//===- bench/FigureCommon.h - Shared experiment harness --------*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared pipeline for the runtime experiments (Figures 9-11 and section
/// 5.5): build a benchmark at its per-processor problem size, normalize,
/// apply each strategy, scalarize, insert communication, and simulate on
/// a modeled machine.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_BENCH_FIGURECOMMON_H
#define ALF_BENCH_FIGURECOMMON_H

#include "benchprogs/Benchmarks.h"
#include "exec/PerfModel.h"
#include "machine/Machine.h"
#include "xform/Strategy.h"

#include <ostream>

namespace alf {
namespace figures {

/// Processor counts of Figures 9-11.
inline const unsigned ProcCounts[] = {1, 4, 16, 64};

/// Per-processor problem size used for each benchmark ("the amount of
/// data per processor remains constant as the number of processors
/// increases", section 5.4). Sized so each run simulates in seconds.
int64_t perProcessorSize(const benchprogs::BenchmarkInfo &B);

/// Simulated time of \p B at per-processor size under \p S on machine
/// \p M with \p Procs processors, favoring fusion (communication
/// inserted after fusion at the loop level).
exec::PerfStats simulateStrategy(const benchprogs::BenchmarkInfo &B,
                                 xform::Strategy S,
                                 const machine::MachineDesc &M,
                                 unsigned Procs);

/// Prints one machine's runtime figure: percent improvement over
/// baseline for every benchmark, strategy and processor count.
void printRuntimeFigure(const machine::MachineDesc &M, std::ostream &OS);

/// Simulated time under the favor-communication policy (exchanges
/// inserted and pipelined at the array level before fusion), c2+f3.
exec::PerfStats simulateFavorComm(const benchprogs::BenchmarkInfo &B,
                                  const machine::MachineDesc &M,
                                  unsigned Procs);

} // namespace figures
} // namespace alf

#endif // ALF_BENCH_FIGURECOMMON_H

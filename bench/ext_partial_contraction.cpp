//===- bench/ext_partial_contraction.cpp - Future-work extension -------------===//
//
// The paper's section 5.2 closes: "SP contains a great many opportunities
// to contract arrays to lower dimensional arrays. Though the resulting
// arrays cannot be manipulated in registers, they conserve memory and
// make better use of the cache." This bench implements that future work
// (Definition 6 relaxed along non-distributed dimensions, rolling-buffer
// storage) and measures it on the six benchmarks with a 1-D processor
// decomposition (dimension 2 sequential).
//
//===----------------------------------------------------------------------===//

#include "benchprogs/Benchmarks.h"

#include "analysis/ASDG.h"
#include "analysis/Footprint.h"
#include "exec/PerfModel.h"
#include "ir/Normalize.h"
#include "scalarize/Scalarize.h"
#include "support/StringUtil.h"
#include "support/TextTable.h"
#include "xform/Strategy.h"

#include <iostream>

using namespace alf;
using namespace alf::analysis;
using namespace alf::benchprogs;
using namespace alf::exec;
using namespace alf::ir;
using namespace alf::xform;

namespace {

uint64_t allocatedBytes(const lir::LoopProgram &LP) {
  FootprintInfo FI = FootprintInfo::compute(LP.source());
  uint64_t Bytes = 0;
  for (const ArraySymbol *A : LP.allocatedArrays()) {
    if (const xform::PartialPlan *Plan = LP.partialPlanFor(A)) {
      Bytes += Plan->bufferBytes();
      continue;
    }
    Bytes += FI.bytesFor(A);
  }
  return Bytes;
}

} // namespace

int main() {
  std::cout << "Extension: contraction to lower-dimensional arrays "
               "(paper section 5.2 future work)\n";
  std::cout << "(c2 plus rolling-buffer contraction; dimension 2 "
               "sequential — a 1-D processor decomposition)\n\n";

  TextTable Table;
  Table.setHeader({"application", "full contr.", "rolling buffers",
                   "array bytes (c2)", "array bytes (+partial)", "saved",
                   "T3E time vs c2"});

  machine::MachineDesc M = machine::crayT3E();
  SequentialDims Seq = SequentialDims::dims({1});

  for (const BenchmarkInfo &B : allBenchmarks()) {
    int64_t N = B.Rank == 1 ? 2048 : 24;
    auto P = B.Build(N);
    normalizeProgram(*P);
    ASDG G = ASDG::build(*P);

    auto Full = scalarize::scalarizeWithStrategy(G, Strategy::C2);
    auto Partial =
        scalarize::scalarizeWithPartialContraction(G, Strategy::C2, Seq);

    machine::ProcGrid Grid = machine::ProcGrid::make(1, B.Rank);
    PerfStats SFull = simulate(Full, M, Grid);
    PerfStats SPartial = simulate(Partial, M, Grid);

    uint64_t BytesFull = allocatedBytes(Full);
    uint64_t BytesPartial = allocatedBytes(Partial);
    double Saved =
        BytesFull == 0
            ? 0.0
            : 100.0 * (1.0 - static_cast<double>(BytesPartial) /
                                 static_cast<double>(BytesFull));

    // Count full contractions in the partial pipeline for reporting.
    std::vector<PartialPlan> Plans;
    StrategyResult SR =
        applyStrategyWithPartialContraction(G, Strategy::C2, Seq, Plans);

    Table.addRow(
        {B.Name, formatString("%zu", SR.Contracted.size()),
         formatString("%zu", Plans.size()),
         formatString("%.1f KB", BytesFull / 1024.0),
         formatString("%.1f KB", BytesPartial / 1024.0),
         formatString("%.1f%%", Saved),
         formatString("%+.1f%%", percentImprovement(SFull, SPartial))});
  }
  Table.print(std::cout);
  std::cout << "\n(SP's forward-substitution sweep temporaries collapse to "
               "single-row buffers, the\nlower-dimensional contraction the "
               "paper anticipated; the buffers stay cache-resident.)\n";
  return 0;
}

//===- bench/ablation_loop_order.cpp - Ablation: loop/dimension matching -----===//
//
// DESIGN.md ablation A2: FIND-LOOP-STRUCTURE matches inner loops with
// higher array dimensions "to exploit spatial locality (assuming
// row-major allocation)" (Figure 4 discussion). This ablation scalarizes
// a stencil program, then overrides each nest's loop structure vector
// with the reversed (column-major-order) permutation and compares cache
// behaviour on the three machines.
//
//===----------------------------------------------------------------------===//

#include "analysis/ASDG.h"
#include "exec/PerfModel.h"
#include "ir/Program.h"
#include "scalarize/Scalarize.h"
#include "support/StringUtil.h"
#include "support/TextTable.h"
#include "xform/Strategy.h"

#include <iostream>

using namespace alf;
using namespace alf::analysis;
using namespace alf::exec;
using namespace alf::ir;
using namespace alf::lir;
using namespace alf::machine;
using namespace alf::xform;

namespace {

std::unique_ptr<Program> makeStencil(int64_t N) {
  auto P = std::make_unique<Program>("stencil");
  const Region *R = P->regionFromExtents({N, N});
  ArraySymbol *A = P->makeArray("A", 2);
  ArraySymbol *B = P->makeArray("B", 2);
  ArraySymbol *C = P->makeArray("C", 2);
  P->assign(R, B,
            mul(add(add(aref(A, {-1, 0}), aref(A, {1, 0})),
                    add(aref(A, {0, -1}), aref(A, {0, 1}))),
                cst(0.25)));
  P->assign(R, C, add(aref(B), mul(aref(A), cst(0.5))));
  return P;
}

/// Reverses the dimension assignment of every nest (outer loop iterates
/// the highest dimension). The stencil has no loop-carried dependences
/// inside its nests, so any permutation is legal.
void reverseLoopOrders(LoopProgram &LP) {
  for (auto &NodePtr : LP.nodesMutable()) {
    auto *Nest = dyn_cast<LoopNest>(NodePtr.get());
    if (!Nest)
      continue;
    unsigned Rank = Nest->LSV.rank();
    std::vector<int> Elems(Rank);
    for (unsigned L = 0; L < Rank; ++L)
      Elems[L] = Nest->LSV.element(Rank - 1 - L);
    Nest->LSV = xform::LoopStructureVector(Elems);
  }
}

} // namespace

int main() {
  const int64_t N = 256;
  std::cout << "Ablation A2: loop/dimension matching in "
               "FIND-LOOP-STRUCTURE (stencil, " << N << "x" << N << ")\n\n";

  TextTable Table;
  Table.setHeader({"machine", "row-major L1 miss", "reversed L1 miss",
                   "row-major time", "reversed time", "slowdown"});

  for (const MachineDesc &M : allMachines()) {
    auto P = makeStencil(N);
    ASDG G = ASDG::build(*P);
    auto Good = scalarize::scalarizeWithStrategy(G, Strategy::C2F3);
    auto Bad = scalarize::scalarizeWithStrategy(G, Strategy::C2F3);
    reverseLoopOrders(Bad);

    ProcGrid Grid = ProcGrid::make(1, 2);
    PerfStats SGood = simulate(Good, M, Grid);
    PerfStats SBad = simulate(Bad, M, Grid);
    Table.addRow({M.Name, formatString("%.1f%%", 100 * SGood.l1MissRatio()),
                  formatString("%.1f%%", 100 * SBad.l1MissRatio()),
                  formatString("%.2f ms", SGood.totalNs() / 1e6),
                  formatString("%.2f ms", SBad.totalNs() / 1e6),
                  formatString("%.2fx", SBad.totalNs() / SGood.totalNs())});
  }
  Table.print(std::cout);
  std::cout << "\n(Matching inner loops to the highest dimension walks "
               "memory contiguously; the reversed order strides by a full "
               "row per iteration.)\n";
  return 0;
}

//===- bench/fig6_compiler_matrix.cpp - Paper Figure 6 ----------------------===//
//
// Reproduces Figure 6: "Observed behavior of five array language
// compilers" — whether each compiler produces the proper fused/contracted
// code for the eight Figure 5 probe fragments.
//
//===----------------------------------------------------------------------===//

#include "vendors/CompilerModel.h"
#include "vendors/Fragments.h"

#include "support/StringUtil.h"
#include "support/TextTable.h"

#include <cstdio>
#include <iostream>

using namespace alf;
using namespace alf::vendors;

int main() {
  std::cout << "Figure 6: observed behavior of five array language "
               "compilers\n";
  std::cout << "(check = proper fused/contracted code for the Figure 5 "
               "fragment)\n\n";

  TextTable Table;
  std::vector<std::string> Header{"compiler"};
  for (unsigned Id = 1; Id <= NumFragments; ++Id)
    Header.push_back(formatString("(%u)", Id));
  Table.setHeader(std::move(Header));

  for (const VendorPolicy &Policy : allVendorPolicies()) {
    std::vector<std::string> Row{Policy.Name};
    for (unsigned Id = 1; Id <= NumFragments; ++Id)
      Row.push_back(fragmentHandledProperly(Id, Policy) ? "yes" : ".");
    Table.addRow(std::move(Row));
  }
  Table.print(std::cout);

  std::cout << "\nFragments:\n";
  for (unsigned Id = 1; Id <= NumFragments; ++Id)
    std::cout << formatString("  (%u) %s\n", Id,
                              describeFragment(Id).c_str());
  return 0;
}

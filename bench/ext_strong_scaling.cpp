//===- bench/ext_strong_scaling.cpp - Strong-scaling extension ---------------===//
//
// The paper's Figures 9-11 scale the problem with the processor count
// (weak scaling) "so that we may neutralize the effect of communication
// masking all other performance characteristics". This extension runs
// the complementary experiment the paper deliberately avoided: a fixed
// global problem divided across more processors (strong scaling), where
// per-processor compute shrinks while message latencies do not — so the
// relative benefit of contraction decays with p, exactly the masking
// the paper describes.
//
//===----------------------------------------------------------------------===//

#include "analysis/ASDG.h"
#include "benchprogs/Benchmarks.h"
#include "comm/CommInsertion.h"
#include "exec/PerfModel.h"
#include "ir/Normalize.h"
#include "scalarize/Scalarize.h"
#include "support/StringUtil.h"
#include "support/TextTable.h"

#include <cmath>
#include <iostream>

using namespace alf;
using namespace alf::analysis;
using namespace alf::exec;
using namespace alf::ir;
using namespace alf::machine;
using namespace alf::xform;

int main() {
  const int64_t GlobalN = 96;
  MachineDesc M = crayT3E();

  std::cout << "Extension: strong scaling (Tomcatv, fixed global "
            << GlobalN << "x" << GlobalN << ", modeled Cray T3E)\n\n";

  TextTable Table;
  Table.setHeader({"p", "per-proc N", "baseline (ms)", "c2 (ms)",
                   "comm share (c2)", "c2 improvement"});

  for (unsigned Procs : {1u, 4u, 16u, 64u}) {
    int64_t LocalN = GlobalN / static_cast<int64_t>(
                                   std::lround(std::sqrt(double(Procs))));
    auto P = benchprogs::buildTomcatv(LocalN);
    normalizeProgram(*P);
    ASDG G = ASDG::build(*P);
    ProcGrid Grid = ProcGrid::make(Procs, 2);

    auto Base = scalarize::scalarizeWithStrategy(G, Strategy::Baseline);
    comm::insertLoopLevelComm(Base);
    PerfStats SB = simulate(Base, M, Grid);

    auto C2 = scalarize::scalarizeWithStrategy(G, Strategy::C2);
    comm::insertLoopLevelComm(C2);
    PerfStats SC = simulate(C2, M, Grid);

    Table.addRow(
        {formatString("%u", Procs),
         formatString("%lld", static_cast<long long>(LocalN)),
         formatString("%.3f", SB.totalNs() / 1e6),
         formatString("%.3f", SC.totalNs() / 1e6),
         formatString("%.1f%%", 100.0 * SC.CommNs / SC.totalNs()),
         formatString("%+.1f%%", percentImprovement(SB, SC))});
  }
  Table.print(std::cout);
  std::cout << "\n(As communication's share of the shrinking local work "
               "grows, the contraction benefit\ndecays — the masking "
               "effect the paper's weak-scaling methodology avoids.)\n";
  return 0;
}

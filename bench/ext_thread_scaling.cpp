//===- bench/ext_thread_scaling.cpp - Parallel executor strong scaling ------===//
//
// Extension: thread-level strong scaling of the tiled parallel executor
// on the Figure-8 benchmark programs at fixed problem size. Fusion and
// contraction hand the executor nests whose dependence structure (the
// UDVs of Definition 2) is known exactly, so each nest's outermost
// dependence-free loop is split into row-tiles across worker threads —
// the same information-reuse argument Sewall & Pennycook make for fused
// kernels. Every parallel run is verified bit-identical to the
// sequential interpreter before its time is reported.
//
// Usage: ext_thread_scaling [N] [maxthreads]
//
//===----------------------------------------------------------------------===//

#include "analysis/ASDG.h"
#include "benchprogs/Benchmarks.h"
#include "exec/Interpreter.h"
#include "exec/ParallelExecutor.h"
#include "ir/Normalize.h"
#include "scalarize/Scalarize.h"
#include "support/StringUtil.h"
#include "support/TextTable.h"

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <thread>

using namespace alf;
using namespace alf::analysis;
using namespace alf::exec;
using namespace alf::ir;
using namespace alf::xform;

namespace {

double secondsOf(const std::function<void()> &Fn) {
  auto T0 = std::chrono::steady_clock::now();
  Fn();
  auto T1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(T1 - T0).count();
}

/// Best of three runs, to damp scheduler noise.
double bestSecondsOf(const std::function<void()> &Fn) {
  double Best = secondsOf(Fn);
  for (int I = 0; I < 2; ++I)
    Best = std::min(Best, secondsOf(Fn));
  return Best;
}

} // namespace

int main(int argc, char **argv) {
  int64_t N = argc > 1 ? std::atoll(argv[1]) : 160;
  unsigned MaxThreads = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 8;
  const uint64_t Seed = 0xa11f;

  std::cout << "Extension: thread scaling of the parallel executor "
            << "(strategy c2+f4, N=" << N << ")\n"
            << "hardware concurrency: " << std::thread::hardware_concurrency()
            << "\n\n";

  for (const benchprogs::BenchmarkInfo &B : benchprogs::allBenchmarks()) {
    // EP is a scalar reduction (never parallelized) and Frac rank-1
    // trivial; the rank-2 stencil codes are where tiles pay off.
    if (B.Rank != 2)
      continue;
    auto P = B.Build(N);
    normalizeProgram(*P);
    ASDG G = ASDG::build(*P);
    auto LP = scalarize::scalarizeWithStrategy(G, Strategy::C2F4);
    ParallelSchedule Sched = planParallelism(LP);

    std::cout << B.Name << ": " << Sched.numParallelNests()
              << " parallel nests\n"
              << describeSchedule(LP, Sched);

    RunResult Oracle;
    double SeqTime = bestSecondsOf([&] { Oracle = run(LP, Seed); });

    TextTable Table;
    Table.setHeader({"threads", "time (ms)", "speedup", "efficiency",
                     "identical"});
    Table.addRow({"seq", formatString("%.2f", SeqTime * 1e3), "1.00", "-",
                  "-"});
    for (unsigned T = 1; T <= MaxThreads; T *= 2) {
      ParallelOptions Opts;
      Opts.NumThreads = T;
      RunResult Par;
      double ParTime = bestSecondsOf(
          [&] { Par = runParallel(LP, Seed, Opts, Sched); });
      bool Identical = resultsMatch(Oracle, Par, 0.0);
      double Speedup = ParTime > 0.0 ? SeqTime / ParTime : 0.0;
      Table.addRow({formatString("%u", T),
                    formatString("%.2f", ParTime * 1e3),
                    formatString("%.2f", Speedup),
                    formatString("%.0f%%", 100.0 * Speedup / T),
                    Identical ? "yes" : "NO"});
      if (!Identical) {
        std::cerr << "FAILURE: parallel result diverged from the "
                     "sequential oracle on "
                  << B.Name << " with " << T << " threads\n";
        return 1;
      }
    }
    Table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}

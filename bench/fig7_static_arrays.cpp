//===- bench/fig7_static_arrays.cpp - Paper Figure 7 ------------------------===//
//
// Reproduces Figure 7: "Static arrays contracted (categorized as
// compiler/user arrays)" for the six benchmarks, compared against the
// paper's reported values and the third-party scalar-language array
// counts the paper quotes.
//
//===----------------------------------------------------------------------===//

#include "benchprogs/Benchmarks.h"

#include "driver/Pipeline.h"
#include "exec/MemoryAccounting.h"
#include "support/StringUtil.h"
#include "support/TextTable.h"

#include <iostream>
#include <set>

using namespace alf;
using namespace alf::benchprogs;
using namespace alf::exec;
using namespace alf::ir;
using namespace alf::xform;

int main() {
  std::cout << "Figure 7: static arrays with and without contraction "
               "(compiler/user split)\n\n";

  TextTable Table;
  Table.setHeader({"application", "w/o contr.", "w/ contr.", "% change",
                   "scalar lang.", "paper w/o", "paper w/"});

  auto AddRows = [&Table](const std::vector<BenchmarkInfo> &Benchmarks) {
    for (const BenchmarkInfo &B : Benchmarks) {
      auto P = B.Build(8);
      driver::Pipeline PL(*P);
      StrategyResult SR = PL.strategy(Strategy::C2);
      std::set<const ArraySymbol *> Contracted(SR.Contracted.begin(),
                                               SR.Contracted.end());
      MemoryCensus Before = computeCensus(PL.program(), {});
      MemoryCensus After = computeCensus(PL.program(), Contracted);

      double Change =
          Before.StaticArrays == 0
              ? 0.0
              : 100.0 * (static_cast<double>(After.StaticArrays) -
                         static_cast<double>(Before.StaticArrays)) /
                    static_cast<double>(Before.StaticArrays);
      Table.addRow(
          {B.Name,
           formatString("%u(%u/%u)", Before.StaticArrays,
                        Before.StaticCompiler, Before.StaticUser),
           formatString("%u(%u/%u)", After.StaticArrays, After.StaticCompiler,
                        After.StaticUser),
           formatString("%.1f", Change),
           B.PaperScalarArrays < 0 ? "na"
                                   : formatString("%d", B.PaperScalarArrays),
           formatString("%u(%u/%u)", B.PaperStaticBefore,
                        B.PaperCompilerBefore,
                        B.PaperStaticBefore - B.PaperCompilerBefore),
           formatString("%u", B.PaperStaticAfter)});
    }
  };
  AddRows(allBenchmarks());
  // The semiring workload zoo rides below the paper's six rows; its
  // "paper" columns hold the expected census rather than published data.
  AddRows(zooBenchmarks());
  Table.print(std::cout);
  std::cout << "\n(\"scalar lang.\" quotes the paper's counts for the "
               "third-party C/Fortran 77 codes; the last three rows are "
               "the semiring workload zoo, expected counts.)\n";
  return 0;
}

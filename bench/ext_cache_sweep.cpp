//===- bench/ext_cache_sweep.cpp - Cache-size sensitivity ablation -----------===//
//
// Where does contraction's runtime benefit come from? The paper
// attributes it to temporal locality ("the elimination of a large
// portion of the compiler and user arrays by contraction drastically
// improves temporal locality"). Sweeping the first-level cache size on
// a fixed benchmark makes the mechanism visible: small caches cannot
// hold the temporaries between producer and consumer nests, so
// contraction (which moves the value into a register) wins big; once
// the cache holds the whole working set, the remaining benefit is just
// the removed loads/stores.
//
//===----------------------------------------------------------------------===//

#include "analysis/ASDG.h"
#include "benchprogs/Benchmarks.h"
#include "exec/PerfModel.h"
#include "ir/Normalize.h"
#include "scalarize/Scalarize.h"
#include "support/StringUtil.h"
#include "support/TextTable.h"

#include <iostream>

using namespace alf;
using namespace alf::analysis;
using namespace alf::exec;
using namespace alf::ir;
using namespace alf::machine;
using namespace alf::xform;

int main() {
  std::cout << "Ablation: contraction benefit vs. first-level cache size "
               "(Tomcatv, 48x48 per processor)\n\n";

  auto P = benchprogs::buildTomcatv(48);
  normalizeProgram(*P);
  ASDG G = ASDG::build(*P);
  auto Baseline = scalarize::scalarizeWithStrategy(G, Strategy::Baseline);
  auto C2 = scalarize::scalarizeWithStrategy(G, Strategy::C2);

  TextTable Table;
  Table.setHeader({"L1 size", "baseline miss", "c2 miss", "baseline (ms)",
                   "c2 (ms)", "c2 improvement"});

  ProcGrid Grid = ProcGrid::make(1, 2);
  for (unsigned KB : {4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    MachineDesc M = crayT3E();
    M.L1 = CacheConfig{static_cast<uint64_t>(KB) * 1024, 32, 1};
    M.L2 = std::nullopt; // isolate the first-level effect
    PerfStats SB = simulate(Baseline, M, Grid);
    PerfStats SC = simulate(C2, M, Grid);
    Table.addRow({formatString("%u KB", KB),
                  formatString("%.1f%%", 100 * SB.l1MissRatio()),
                  formatString("%.1f%%", 100 * SC.l1MissRatio()),
                  formatString("%.2f", SB.totalNs() / 1e6),
                  formatString("%.2f", SC.totalNs() / 1e6),
                  formatString("%+.1f%%", percentImprovement(SB, SC))});
  }
  Table.print(std::cout);
  std::cout << "\n(The 1998 machines sit at the left edge of this sweep — "
               "8 KB on the T3E and Paragon —\nwhich is why the paper "
               "measures such large contraction wins.)\n";
  return 0;
}

//===- bench/fig11_paragon.cpp - Paper Figure 11 (Intel Paragon) ------------===//

#include "FigureCommon.h"

#include <iostream>

int main() {
  alf::figures::printRuntimeFigure(alf::machine::intelParagon(), std::cout);
  return 0;
}

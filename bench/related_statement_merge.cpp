//===- bench/related_statement_merge.cpp - Related-work comparison -----------===//
//
// Quantifies the paper's section 6 claim about Hwang et al.'s array
// operation synthesis: statement merge also removes the intermediate
// array, but "it potentially introduces redundant computation and
// increases overall program execution time". A temporary holding an
// expensive expression is consumed by K statements; contraction computes
// it once per element, merge K times.
//
//===----------------------------------------------------------------------===//

#include "analysis/ASDG.h"
#include "analysis/Footprint.h"
#include "exec/PerfModel.h"
#include "ir/Program.h"
#include "scalarize/Scalarize.h"
#include "support/StringUtil.h"
#include "support/TextTable.h"
#include "xform/StatementMerge.h"
#include "xform/Strategy.h"

#include <iostream>
#include <memory>

using namespace alf;
using namespace alf::analysis;
using namespace alf::exec;
using namespace alf::ir;
using namespace alf::xform;

namespace {

/// Arrays that actually require storage after a pipeline.
size_t storedArrays(const lir::LoopProgram &LP) {
  analysis::FootprintInfo FI =
      analysis::FootprintInfo::compute(LP.source());
  size_t Count = 0;
  for (const ArraySymbol *A : LP.allocatedArrays())
    if (FI.boundsFor(A))
      ++Count;
  return Count;
}

std::unique_ptr<Program> makeDiamond(unsigned Consumers, int64_t N) {
  auto P = std::make_unique<Program>("diamond");
  const Region *R = P->regionFromExtents({N, N});
  ArraySymbol *A = P->makeArray("A", 2);
  ArraySymbol *T = P->makeUserTemp("T", 2);
  // An expensive definition: several flops per element.
  P->assign(R, T,
            esqrt(add(mul(aref(A), aref(A)),
                      eexp(mul(aref(A), cst(0.01))))));
  for (unsigned I = 0; I < Consumers; ++I) {
    ArraySymbol *Out =
        P->makeArray(formatString("out%u", I), 2);
    P->assign(R, Out, add(aref(T), cst(0.5 * I)));
  }
  return P;
}

} // namespace

int main() {
  const int64_t N = 64;
  machine::MachineDesc M = machine::crayT3E();
  machine::ProcGrid Grid = machine::ProcGrid::make(1, 2);

  std::cout << "Related work: fusion-for-contraction vs. statement merge "
               "(Hwang et al.)\n";
  std::cout << "(one temporary with an expensive definition, K consumers, "
            << N << "x" << N << ", modeled Cray T3E)\n\n";

  TextTable Table;
  Table.setHeader({"K", "arrays: contr.", "arrays: merge", "flops: contr.",
                   "flops: merge", "time: contr.", "time: merge",
                   "merge penalty"});

  for (unsigned K : {1u, 2u, 4u, 8u}) {
    // Contraction pipeline (the paper's approach).
    auto PC = makeDiamond(K, N);
    ASDG GC = ASDG::build(*PC);
    auto Contracted = scalarize::scalarizeWithStrategy(GC, Strategy::C2F3);
    PerfStats SC = simulate(Contracted, M, Grid);

    // Statement merge + dead code elimination (the related-work
    // approach), then the same fusion pipeline on what remains.
    auto PM = makeDiamond(K, N);
    mergeStatements(*PM);
    eliminateDeadStatements(*PM);
    ASDG GM = ASDG::build(*PM);
    auto Merged = scalarize::scalarizeWithStrategy(GM, Strategy::C2F3);
    PerfStats SM = simulate(Merged, M, Grid);

    Table.addRow(
        {formatString("%u", K),
         formatString("%zu", storedArrays(Contracted)),
         formatString("%zu", storedArrays(Merged)),
         formatString("%llu", static_cast<unsigned long long>(SC.Flops)),
         formatString("%llu", static_cast<unsigned long long>(SM.Flops)),
         formatString("%.2f ms", SC.totalNs() / 1e6),
         formatString("%.2f ms", SM.totalNs() / 1e6),
         formatString("%.2fx", SM.totalNs() / SC.totalNs())});
  }
  Table.print(std::cout);
  std::cout << "\n(Both remove the temporary array; merge re-evaluates the "
               "definition at every use,\nso its cost grows with K while "
               "contraction's stays flat — the paper's argument for\n"
               "solving the intermediate-array problem with fusion and "
               "contraction.)\n";
  return 0;
}

//===- tests/IlpStrategyTest.cpp - Branch-and-bound partitioner tests -------===//
//
// Unit tests for xform/IlpStrategy: known-optimal hand-built ASDGs
// (chains, diamonds, a fan-in contraction trade-off where the greedy
// heuristic is provably suboptimal), exactness of the pruned search
// against a brute-force enumeration, and the node-budget fallback to the
// greedy result.
//
//===----------------------------------------------------------------------===//

#include "xform/IlpStrategy.h"

#include "ir/Generator.h"
#include "ir/Normalize.h"
#include "ir/Verifier.h"
#include "support/Statistic.h"
#include "verify/Verify.h"
#include "xform/Fusion.h"

#include <gtest/gtest.h>

#include <functional>

using namespace alf;
using namespace alf::analysis;
using namespace alf::ir;
using namespace alf::xform;

namespace {

bool contains(const std::vector<const ArraySymbol *> &Vec,
              const std::string &Name) {
  for (const ArraySymbol *A : Vec)
    if (A->getName() == Name)
      return true;
  return false;
}

/// Objective of the greedy FUSION-FOR-CONTRACTION baseline (the c2
/// candidate set, matching the solver's default filter).
double greedyObjective(const ASDG &G) {
  FusionPartition P = FusionPartition::trivial(G);
  fuseForContraction(P, anyArray());
  return contractedBytes(P, contractibleArrays(P, anyArray()));
}

/// Brute force: enumerate every restricted-growth assignment, keep the
/// legal partitions, and return the best objective. Ground truth for the
/// solver's pruning. Only usable on small programs.
double bruteForceOptimum(const ASDG &G) {
  unsigned N = G.numNodes();
  EXPECT_LE(N, 8u) << "brute force is exponential; keep test programs small";
  std::vector<unsigned> Assign(N);
  double Best = -1;
  std::function<void(unsigned, std::vector<unsigned>)> Enumerate =
      [&](unsigned Depth, std::vector<unsigned> Reps) {
        if (Depth == N) {
          FusionPartition P = FusionPartition::fromAssignment(G, Assign);
          if (!isValidPartition(P))
            return;
          Best = std::max(
              Best, contractedBytes(P, contractibleArrays(P, anyArray())));
          return;
        }
        for (unsigned R : Reps) {
          Assign[Depth] = R;
          Enumerate(Depth + 1, Reps);
        }
        Assign[Depth] = Depth;
        Reps.push_back(Depth);
        Enumerate(Depth + 1, Reps);
      };
  Enumerate(0, {});
  return Best;
}

/// A three-statement chain through two contractible temporaries: the
/// whole program fuses into one nest and both temporaries contract.
std::unique_ptr<Program> makeChain() {
  auto P = std::make_unique<Program>("chain");
  const Region *R = P->regionFromExtents({16});
  ArraySymbol *A = P->makeArray("A", 1);
  ArraySymbol *B = P->makeArray("B", 1);
  ArraySymbol *T1 = P->makeUserTemp("T1", 1);
  ArraySymbol *T2 = P->makeUserTemp("T2", 1);
  P->assign(R, T1, aref(A));                 // S0
  P->assign(R, T2, add(aref(T1), aref(A))); // S1
  P->assign(R, B, aref(T2));                 // S2
  normalizeProgram(*P);
  return P;
}

/// A diamond: one producer fans out to two temporaries that fan back in.
std::unique_ptr<Program> makeDiamond() {
  auto P = std::make_unique<Program>("diamond");
  const Region *R = P->regionFromExtents({16});
  ArraySymbol *A = P->makeArray("A", 1);
  ArraySymbol *B = P->makeArray("B", 1);
  ArraySymbol *T = P->makeUserTemp("T", 1);
  ArraySymbol *U1 = P->makeUserTemp("U1", 1);
  ArraySymbol *U2 = P->makeUserTemp("U2", 1);
  P->assign(R, T, aref(A));                   // S0
  P->assign(R, U1, add(aref(T), aref(A)));   // S1
  P->assign(R, U2, mul(aref(T), aref(A)));   // S2
  P->assign(R, B, add(aref(U1), aref(U2)));  // S3
  normalizeProgram(*P);
  return P;
}

/// The fan-in trade-off where greedy FUSION-FOR-CONTRACTION is provably
/// suboptimal. X is the heaviest temporary (four references), so the
/// greedy loop contracts it first by fusing {S0,S3}. But S0 reads V1 and
/// V2 at offset -1 while S3 reads them at +1, so once S0 and S3 share a
/// cluster, pulling in S4 (V1's writer) or S5 (V2's writer) needs a loop
/// direction preserving both a +1 and a -1 anti dependence — impossible.
/// That blocks M1 and M2 (three references each) forever: greedy ends at
/// w(X) = 4·16 elements. The optimum leaves S0 alone and fuses
/// {S1..S5}, contracting M1 and M2 for 6·16 elements.
std::unique_ptr<Program> makeFanInTradeoff() {
  auto P = std::make_unique<Program>("fanin-tradeoff");
  const Region *R = P->regionFromExtents({16});
  ArraySymbol *V1 = P->makeArray("V1", 1);
  ArraySymbol *V2 = P->makeArray("V2", 1);
  ArraySymbol *A = P->makeArray("A", 1);
  ArraySymbol *B = P->makeArray("B", 1);
  ArraySymbol *W = P->makeArray("W", 1);
  ArraySymbol *X = P->makeUserTemp("X", 1);
  ArraySymbol *M1 = P->makeUserTemp("M1", 1);
  ArraySymbol *M2 = P->makeUserTemp("M2", 1);
  // S0: X := V1@(-1) + V2@(-1) + A
  P->assign(R, X, add(add(aref(V1, {-1}), aref(V2, {-1})), aref(A)));
  P->assign(R, M1, aref(A)); // S1
  P->assign(R, M2, aref(B)); // S2
  // S3: W := X + X + X + M1 + M2 + V1@(1) + V2@(1)
  P->assign(R, W,
            add(add(add(aref(X), aref(X)), aref(X)),
                add(add(aref(M1), aref(M2)),
                    add(aref(V1, {1}), aref(V2, {1})))));
  P->assign(R, V1, add(aref(M1), aref(A))); // S4
  P->assign(R, V2, add(aref(M2), aref(B))); // S5
  normalizeProgram(*P);
  return P;
}

TEST(IlpStrategyTest, ChainContractsEverything) {
  auto P = makeChain();
  ASDG G = ASDG::build(*P);
  IlpStats St;
  StrategyResult SR = solveOptimalPartition(G, IlpOptions(), &St);
  EXPECT_TRUE(isValidPartition(SR.Partition));
  EXPECT_EQ(SR.Partition.numClusters(), 1u);
  EXPECT_TRUE(contains(SR.Contracted, "T1"));
  EXPECT_TRUE(contains(SR.Contracted, "T2"));
  // Two 16-element temporaries, two references each (one write, one
  // read), eight bytes per element.
  EXPECT_DOUBLE_EQ(St.ObjectiveBytes, 2 * 2 * 16 * 8.0);
  EXPECT_DOUBLE_EQ(St.ObjectiveBytes, bruteForceOptimum(G));
  EXPECT_FALSE(St.ImprovedOverGreedy); // greedy is optimal on a chain
  EXPECT_FALSE(St.BudgetExhausted);
}

TEST(IlpStrategyTest, DiamondContractsEverything) {
  auto P = makeDiamond();
  ASDG G = ASDG::build(*P);
  IlpStats St;
  StrategyResult SR = solveOptimalPartition(G, IlpOptions(), &St);
  EXPECT_TRUE(isValidPartition(SR.Partition));
  EXPECT_EQ(SR.Partition.numClusters(), 1u);
  EXPECT_TRUE(contains(SR.Contracted, "T"));
  EXPECT_TRUE(contains(SR.Contracted, "U1"));
  EXPECT_TRUE(contains(SR.Contracted, "U2"));
  // T has three references, U1 and U2 two each.
  EXPECT_DOUBLE_EQ(St.ObjectiveBytes, (3 + 2 + 2) * 16 * 8.0);
  EXPECT_DOUBLE_EQ(St.ObjectiveBytes, bruteForceOptimum(G));
}

TEST(IlpStrategyTest, BeatsGreedyOnFanInTradeoff) {
  auto P = makeFanInTradeoff();
  ASSERT_TRUE(isWellFormed(*P));
  ASDG G = ASDG::build(*P);
  ASSERT_EQ(G.numNodes(), 6u) << "normalization must not split this program";

  double Greedy = greedyObjective(G);
  EXPECT_DOUBLE_EQ(Greedy, 4 * 16 * 8.0); // greedy contracts only X

  IlpStats St;
  StrategyResult SR = solveOptimalPartition(G, IlpOptions(), &St);
  EXPECT_TRUE(isValidPartition(SR.Partition));
  EXPECT_DOUBLE_EQ(St.GreedyObjectiveBytes, Greedy);
  EXPECT_DOUBLE_EQ(St.ObjectiveBytes, (3 + 3) * 16 * 8.0); // M1 and M2
  EXPECT_TRUE(St.ImprovedOverGreedy);
  EXPECT_TRUE(contains(SR.Contracted, "M1"));
  EXPECT_TRUE(contains(SR.Contracted, "M2"));
  EXPECT_FALSE(contains(SR.Contracted, "X"));
  EXPECT_DOUBLE_EQ(St.ObjectiveBytes, bruteForceOptimum(G));

  // The emitted partition must satisfy the independent verifier, and the
  // strategy layer must reach the same solution through applyStrategy.
  EXPECT_TRUE(verify::verifyStrategy(G, SR).ok());
  StrategyResult ViaLayer = applyStrategy(G, Strategy::IlpOptimal);
  EXPECT_DOUBLE_EQ(contractedBytes(ViaLayer.Partition, ViaLayer.Contracted),
                   St.ObjectiveBytes);
}

TEST(IlpStrategyTest, PruningPreservesOptimality) {
  // The search must prune (the bound fires on the trade-off program) yet
  // still match the unpruned brute-force optimum.
  auto P = makeFanInTradeoff();
  ASDG G = ASDG::build(*P);
  IlpStats St;
  solveOptimalPartition(G, IlpOptions(), &St);
  EXPECT_GT(St.BranchesPruned, 0u);
  EXPECT_GT(St.NodesExplored, 0u);
  EXPECT_DOUBLE_EQ(St.ObjectiveBytes, bruteForceOptimum(G));
}

TEST(IlpStrategyTest, MatchesBruteForceOnGeneratedPrograms) {
  // Small generator programs (the stress sweep's distribution, scaled
  // down) — the pruned search must equal exhaustive enumeration.
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    GeneratorConfig Cfg;
    Cfg.Seed = Seed;
    Cfg.NumStmts = 3 + static_cast<unsigned>(Seed % 3);
    Cfg.NumPersistent = 2;
    Cfg.NumTemps = 2;
    Cfg.Rank = 1 + static_cast<unsigned>(Seed % 2);
    Cfg.Extent = 6;
    Cfg.MaxOffset = 1;
    auto P = generateRandomProgram(Cfg);
    ASDG G = ASDG::build(*P);
    if (G.numNodes() > 8)
      continue; // keep brute force tractable
    IlpStats St;
    solveOptimalPartition(G, IlpOptions(), &St);
    EXPECT_DOUBLE_EQ(St.ObjectiveBytes, bruteForceOptimum(G))
        << "seed " << Seed;
    EXPECT_GE(St.ObjectiveBytes, greedyObjective(G)) << "seed " << Seed;
  }
}

TEST(IlpStrategyTest, BudgetFallbackDegradesToGreedy) {
  resetStatistics();
  auto P = makeFanInTradeoff();
  ASDG G = ASDG::build(*P);

  IlpOptions Opts;
  Opts.NodeBudget = 1; // exhausted before any assignment is explored
  IlpStats St;
  StrategyResult SR = solveOptimalPartition(G, Opts, &St);
  EXPECT_TRUE(St.BudgetExhausted);
  EXPECT_FALSE(St.ImprovedOverGreedy);
  EXPECT_DOUBLE_EQ(St.ObjectiveBytes, St.GreedyObjectiveBytes);
  EXPECT_DOUBLE_EQ(St.ObjectiveBytes, greedyObjective(G));
  EXPECT_TRUE(isValidPartition(SR.Partition));
  EXPECT_TRUE(contains(SR.Contracted, "X")); // the greedy solution

  // The fallback is visible as a "strategy" statistic.
  EXPECT_GE(getStatisticValue("strategy", "NumIlpBudgetExhausted"), 1u);
  EXPECT_GE(getStatisticValue("strategy", "NumIlpSolves"), 1u);
}

TEST(IlpStrategyTest, StrategyNameAndLookup) {
  EXPECT_STREQ(getStrategyName(Strategy::IlpOptimal), "ilp");
  EXPECT_EQ(strategyNamed("ilp"), Strategy::IlpOptimal);
  EXPECT_EQ(strategyNamed("c2"), Strategy::C2);
  EXPECT_EQ(strategyNamed("nope"), std::nullopt);
  // The paper's presentation list stays the paper's: eight strategies,
  // the optimal partitioner only by explicit request.
  EXPECT_EQ(allStrategies().size(), 8u);
  for (Strategy S : allStrategies())
    EXPECT_NE(S, Strategy::IlpOptimal);
}

} // namespace

//===- tests/FootprintTest.cpp - Allocation-bounds regression tests --------===//
//
// Targeted regressions for analysis::FootprintInfo: the halo bounding box
// must be the exact union of every reference's shifted region, including
// at rank 3 with negative and mixed-sign offsets where a min/max slip in
// one dimension silently under- or over-allocates.
//
//===----------------------------------------------------------------------===//

#include "analysis/Footprint.h"
#include "ir/Expr.h"
#include "ir/Program.h"

#include <gtest/gtest.h>

using namespace alf;
using namespace alf::analysis;
using namespace alf::ir;

namespace {

void expectBounds(const FootprintInfo &FI, const ArraySymbol *A,
                  std::vector<int64_t> Lo, std::vector<int64_t> Hi) {
  const Region *B = FI.boundsFor(A);
  ASSERT_NE(B, nullptr) << A->getName() << " has no footprint";
  ASSERT_EQ(B->rank(), Lo.size()) << A->getName();
  for (unsigned D = 0; D < B->rank(); ++D) {
    EXPECT_EQ(B->lo(D), Lo[D]) << A->getName() << " dim " << D;
    EXPECT_EQ(B->hi(D), Hi[D]) << A->getName() << " dim " << D;
  }
}

TEST(FootprintTest, Rank3NegativeOffsetsExtendLowBounds) {
  Program P("fp-neg");
  const Region *R = P.regionFromExtents({4, 5, 6}); // [1..4, 1..5, 1..6]
  ArraySymbol *A = P.makeArray("A", 3);
  ArraySymbol *B = P.makeArray("B", 3);
  // B is read at two strictly negative offsets; its box must reach down
  // to 1-2 = -1 in dim 0, 1-1 = 0 in dim 1, 1-3 = -2 in dim 2, while the
  // high bounds stay at the region's (no positive shift anywhere).
  P.assign(R, A,
           add(aref(B, {-2, 0, -3}), aref(B, {0, -1, 0})));
  FootprintInfo FI = FootprintInfo::compute(P);
  expectBounds(FI, B, {-1, 0, -2}, {4, 5, 6});
  expectBounds(FI, A, {1, 1, 1}, {4, 5, 6});
}

TEST(FootprintTest, Rank3MixedSignOffsetsWidenBothEnds) {
  Program P("fp-mixed");
  const Region *R = P.regionFromExtents({4, 4, 4});
  ArraySymbol *A = P.makeArray("A", 3);
  ArraySymbol *B = P.makeArray("B", 3);
  // One reference shifts (-1, +2, 0), another (+3, -2, -1): per dimension
  // the box unions both shifts, so each dimension widens independently —
  // a regression guard against pairing the wrong min/max per axis.
  P.assign(R, A, aref(B, {-1, 2, 0}));
  P.assign(R, A, aref(B, {3, -2, -1}));
  FootprintInfo FI = FootprintInfo::compute(P);
  expectBounds(FI, B, {0, -1, 0}, {7, 6, 4});
}

TEST(FootprintTest, LHSOffsetAndMultiRegionUnion) {
  Program P("fp-lhs");
  const Region *R1 = P.regionFromExtents({3, 3, 3});
  const Region *R2 = P.internRegion(Region({2, 2, 2}, {5, 5, 5}));
  ArraySymbol *A = P.makeArray("A", 3);
  ArraySymbol *B = P.makeArray("B", 3);
  // Writes through a mixed-sign target offset union with reads from a
  // second, non-canonical region.
  P.assign(R1, A, Offset({-1, 0, 2}), aref(B));
  P.assign(R2, A, aref(B, {1, 1, 1}));
  FootprintInfo FI = FootprintInfo::compute(P);
  // A: R1 + (-1,0,2) = [0..2, 1..3, 3..5] union R2 = [2..5]^3.
  expectBounds(FI, A, {0, 1, 2}, {5, 5, 5});
  // B: R1 + 0 union R2 + (1,1,1) = [1..3]^3 union [3..6]^3.
  expectBounds(FI, B, {1, 1, 1}, {6, 6, 6});
}

} // namespace

//===- tests/TestPrograms.h - Shared program builders for tests -*- C++ -*-===//
//
// Part of the ALF project: array-level fusion and contraction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builders for the paper's worked examples, shared across test binaries.
///
//===----------------------------------------------------------------------===//

#ifndef ALF_TESTS_TESTPROGRAMS_H
#define ALF_TESTS_TESTPROGRAMS_H

#include "ir/Program.h"

#include <memory>

namespace alf {
namespace tp {

/// The paper's Figure 2 example over [1..M, 1..N]:
///   S0: A := B@(-1,0)
///   S1: C := A@(0,-1)
///   S2: B := A@(-1,1)
/// Expected UDVs: A: (0,1) on S0->S1 and (1,-1) on S0->S2; B: (-1,0) anti
/// on S0->S2.
inline std::unique_ptr<ir::Program> makeFigure2(int64_t M = 8, int64_t N = 8) {
  using namespace ir;
  auto P = std::make_unique<Program>("figure2");
  const Region *R = P->regionFromExtents({M, N});
  ArraySymbol *A = P->makeArray("A", 2);
  ArraySymbol *B = P->makeArray("B", 2);
  ArraySymbol *C = P->makeArray("C", 2);
  P->assign(R, A, aref(B, {-1, 0}));
  P->assign(R, C, aref(A, {0, -1}));
  P->assign(R, B, aref(A, {-1, 1}));
  return P;
}

/// The Figure 1 Tomcatv tridiagonal-solver fragment, modeled as rank-1
/// statements over one row sweep (the paper's `R(i,:) = ...` slices):
///   S0: R  := AA * Dprev
///   S1: D  := recip(DD - AAprev * R)
///   S2: Rx := Rx - Rxprev * R        (reads and writes Rx)
///   S3: Ry := Ry - Ryprev * R        (reads and writes Ry)
/// After normalization, S2/S3 split through compiler temporaries. The
/// paper's point: R contracts to the scalar `s` of Figure 1(b).
inline std::unique_ptr<ir::Program> makeTomcatvFragment(int64_t N = 64) {
  using namespace ir;
  auto P = std::make_unique<Program>("tomcatv-fragment");
  const Region *Row = P->regionFromExtents({N});
  ArraySymbol *R = P->makeUserTemp("R", 1);
  ArraySymbol *AA = P->makeArray("AA", 1);
  ArraySymbol *AAprev = P->makeArray("AAprev", 1);
  ArraySymbol *D = P->makeArray("D", 1);
  ArraySymbol *Dprev = P->makeArray("Dprev", 1);
  ArraySymbol *DD = P->makeArray("DD", 1);
  ArraySymbol *Rx = P->makeArray("Rx", 1);
  ArraySymbol *Rxprev = P->makeArray("Rxprev", 1);
  ArraySymbol *Ry = P->makeArray("Ry", 1);
  ArraySymbol *Ryprev = P->makeArray("Ryprev", 1);
  P->assign(Row, R, mul(aref(AA), aref(Dprev)));
  P->assign(Row, D, recip(sub(aref(DD), mul(aref(AAprev), aref(R)))));
  P->assign(Row, Rx, sub(aref(Rx), mul(aref(Rxprev), aref(R))));
  P->assign(Row, Ry, sub(aref(Ry), mul(aref(Ryprev), aref(R))));
  return P;
}

/// A producer/consumer pair with a user temporary:
///   S0: B := A + A
///   S1: C := B
/// (the paper's Figure 5 fragment (6); B is dead afterwards).
inline std::unique_ptr<ir::Program> makeUserTempPair(int64_t N = 16) {
  using namespace ir;
  auto P = std::make_unique<Program>("user-temp-pair");
  const Region *R = P->regionFromExtents({N, N});
  ArraySymbol *A = P->makeArray("A", 2);
  ArraySymbol *B = P->makeUserTemp("B", 2);
  ArraySymbol *C = P->makeArray("C", 2);
  P->assign(R, B, add(aref(A), aref(A)));
  P->assign(R, C, aref(B));
  return P;
}

} // namespace tp
} // namespace alf

#endif // ALF_TESTS_TESTPROGRAMS_H

//===- tests/FusionTest.cpp - Fusion partition and algorithm tests ----------===//

#include "xform/Fusion.h"
#include "xform/Strategy.h"

#include "ir/Normalize.h"
#include "ir/Verifier.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

using namespace alf;
using namespace alf::analysis;
using namespace alf::ir;
using namespace alf::xform;

namespace {

bool contains(const std::vector<const ArraySymbol *> &Vec,
              const std::string &Name) {
  for (const ArraySymbol *A : Vec)
    if (A->getName() == Name)
      return true;
  return false;
}

TEST(FusionPartitionTest, TrivialPartition) {
  auto P = tp::makeFigure2();
  ASDG G = ASDG::build(*P);
  FusionPartition FP = FusionPartition::trivial(G);
  EXPECT_EQ(FP.numClusters(), 3u);
  for (unsigned I = 0; I < 3; ++I) {
    EXPECT_EQ(FP.clusterOf(I), I);
    EXPECT_EQ(FP.members(I), std::vector<unsigned>{I});
  }
  EXPECT_TRUE(isValidPartition(FP));
}

TEST(FusionPartitionTest, MergeIntoSmallestId) {
  auto P = tp::makeFigure2();
  ASDG G = ASDG::build(*P);
  FusionPartition FP = FusionPartition::trivial(G);
  unsigned Survivor = FP.merge({0, 2});
  EXPECT_EQ(Survivor, 0u);
  EXPECT_EQ(FP.numClusters(), 2u);
  EXPECT_EQ(FP.clusterOf(2), 0u);
  EXPECT_EQ(FP.members(0), (std::vector<unsigned>{0, 2}));
}

TEST(FusionPartitionTest, GrowFindsPathClusters) {
  // S0 -> S1 -> S2 with S0 and S2 referencing X: fusing {S0,S2} without S1
  // would create a cycle, so GROW must return {S1}.
  Program P("grow");
  const Region *R = P.regionFromExtents({8});
  ArraySymbol *X = P.makeUserTemp("X", 1);
  ArraySymbol *Y = P.makeUserTemp("Y", 1);
  ArraySymbol *A = P.makeArray("A", 1);
  ArraySymbol *B = P.makeArray("B", 1);
  P.assign(R, X, aref(A));               // S0 writes X
  P.assign(R, Y, aref(X));               // S1 reads X, writes Y
  P.assign(R, B, add(aref(Y), aref(X))); // S2 reads X and Y
  ASDG G = ASDG::build(P);
  FusionPartition FP = FusionPartition::trivial(G);
  std::set<unsigned> C{0, 2};
  EXPECT_EQ(FP.grow(C), std::set<unsigned>{1});
  // Growing a closed set adds nothing.
  std::set<unsigned> All{0, 1, 2};
  EXPECT_TRUE(FP.grow(All).empty());
}

TEST(LegalityTest, RegionMismatchBlocksFusion) {
  Program P("regions");
  const Region *R1 = P.regionFromExtents({8});
  const Region *R2 = P.regionFromExtents({9});
  ArraySymbol *A = P.makeArray("A", 1);
  ArraySymbol *B = P.makeArray("B", 1);
  ArraySymbol *C = P.makeArray("C", 1);
  P.assign(R1, B, aref(A));
  P.assign(R2, C, aref(A));
  ASDG G = ASDG::build(P);
  FusionPartition FP = FusionPartition::trivial(G);
  EXPECT_FALSE(isLegalFusion(FP, {0, 1}));
}

TEST(LegalityTest, NonNullFlowBlocksFusion) {
  // Definition 5 (ii): loop-carried flow dependences inhibit fusion.
  Program P("flow");
  const Region *R = P.regionFromExtents({8});
  ArraySymbol *A = P.makeArray("A", 1);
  ArraySymbol *B = P.makeUserTemp("B", 1);
  ArraySymbol *C = P.makeArray("C", 1);
  P.assign(R, B, aref(A));
  P.assign(R, C, aref(B, {-1})); // flow UDV (0)-(-1) = (1)
  ASDG G = ASDG::build(P);
  FusionPartition FP = FusionPartition::trivial(G);
  EXPECT_FALSE(isLegalFusion(FP, {0, 1}));
}

TEST(LegalityTest, NullFlowAllowsFusion) {
  auto P = tp::makeUserTempPair();
  ASDG G = ASDG::build(*P);
  FusionPartition FP = FusionPartition::trivial(G);
  LoopStructureVector LSV;
  EXPECT_TRUE(isLegalFusion(FP, {0, 1}, &LSV));
  EXPECT_EQ(LSV, LoopStructureVector::identity(2));
}

TEST(LegalityTest, AntiDependenceFusedByReversal) {
  // Figure 5 fragment (3) shape: S0 reads C@(-1,0); S1 writes C. The anti
  // UDV (-1,0) requires a reversed loop, which FIND-LOOP-STRUCTURE
  // provides (the commercial compilers in section 5.1 fail here).
  Program P("frag3");
  const Region *R = P.regionFromExtents({8, 8});
  ArraySymbol *A = P.makeArray("A", 2);
  ArraySymbol *B = P.makeArray("B", 2);
  ArraySymbol *C = P.makeArray("C", 2);
  P.assign(R, B, add(aref(A, {-1, 0}), aref(C, {-1, 0})));
  P.assign(R, C, mul(aref(A), aref(A)));
  ASDG G = ASDG::build(P);
  FusionPartition FP = FusionPartition::trivial(G);
  LoopStructureVector LSV;
  ASSERT_TRUE(isLegalFusion(FP, {0, 1}, &LSV));
  EXPECT_EQ(LSV, LoopStructureVector({-1, 2}));
}

TEST(LegalityTest, CommStatementNeverFuses) {
  Program P("comm");
  const Region *R = P.regionFromExtents({8});
  ArraySymbol *A = P.makeArray("A", 1);
  ArraySymbol *B = P.makeArray("B", 1);
  P.assign(R, A, aref(B));
  P.comm(A, Offset({1}));
  ASDG G = ASDG::build(P);
  FusionPartition FP = FusionPartition::trivial(G);
  EXPECT_FALSE(isLegalFusion(FP, {0, 1}));
}

TEST(ContractibleTest, RequiresNullUDVsAndSingleCluster) {
  auto P = tp::makeUserTempPair();
  ASDG G = ASDG::build(*P);
  FusionPartition FP = FusionPartition::trivial(G);
  const auto *B = cast<ArraySymbol>(P->findSymbol("B"));
  // Unfused: refs in two clusters.
  EXPECT_FALSE(isContractible(FP, B));
  // Hypothetically fused: contractible.
  EXPECT_TRUE(isContractible(FP, {0, 1}, B));
  FP.merge({0, 1});
  EXPECT_TRUE(isContractible(FP, B));
}

TEST(ContractibleTest, LiveOutNeverContractible) {
  Program P("liveout");
  const Region *R = P.regionFromExtents({8});
  ArraySymbol *A = P.makeArray("A", 1);
  ArraySymbol *B = P.makeArray("B", 1); // live-out by default
  P.assign(R, B, aref(A));
  P.assign(R, A, aref(B));
  ASDG G = ASDG::build(P);
  FusionPartition FP = FusionPartition::trivial(G);
  EXPECT_FALSE(isContractible(FP, {0, 1},
                              cast<ArraySymbol>(P.findSymbol("B"))));
}

TEST(ContractibleTest, UpwardExposedReadBlocksContraction) {
  // X is read before it is written: the live-in value is required, so the
  // array cannot become a scalar even though all UDVs are null.
  Program P("upward");
  const Region *R = P.regionFromExtents({8});
  ArraySymbol *A = P.makeArray("A", 1);
  ArraySymbol *B = P.makeArray("B", 1);
  ArrayOpts Opts;
  Opts.LiveOut = false;
  Opts.LiveIn = true;
  ArraySymbol *X = P.makeArray("X", 1, Opts);
  P.assign(R, A, aref(X)); // upward-exposed read of X
  P.assign(R, X, aref(B));
  ASDG G = ASDG::build(P);
  FusionPartition FP = FusionPartition::trivial(G);
  EXPECT_FALSE(isContractible(FP, {0, 1},
                              cast<ArraySymbol>(P.findSymbol("X"))));
}

TEST(ContractibleTest, NonNullUDVBlocksContraction) {
  Program P("shifted");
  const Region *R = P.regionFromExtents({8});
  ArraySymbol *A = P.makeArray("A", 1);
  ArraySymbol *B = P.makeUserTemp("B", 1);
  ArraySymbol *C = P.makeArray("C", 1);
  P.assign(R, B, aref(A));
  P.assign(R, C, aref(B, {1})); // UDV (0)-(1) = (-1), non-null
  ASDG G = ASDG::build(P);
  FusionPartition FP = FusionPartition::trivial(G);
  EXPECT_FALSE(isContractible(FP, {0, 1},
                              cast<ArraySymbol>(P.findSymbol("B"))));
}

TEST(FusionForContractionTest, UserTempPairContracts) {
  auto P = tp::makeUserTempPair();
  ASDG G = ASDG::build(*P);
  FusionPartition FP = FusionPartition::trivial(G);
  EXPECT_EQ(fuseForContraction(FP, anyArray()), 1u);
  EXPECT_EQ(FP.numClusters(), 1u);
  auto Contracted = contractibleArrays(FP, anyArray());
  ASSERT_EQ(Contracted.size(), 1u);
  EXPECT_EQ(Contracted[0]->getName(), "B");
  EXPECT_TRUE(isValidPartition(FP));
}

TEST(FusionForContractionTest, TomcatvContractsRAndCompilerTemps) {
  // The paper's Figure 1 motivation: R contracts to a scalar.
  auto P = tp::makeTomcatvFragment();
  normalizeProgram(*P);
  EXPECT_TRUE(isWellFormed(*P));
  ASDG G = ASDG::build(*P);
  FusionPartition FP = FusionPartition::trivial(G);
  fuseForContraction(FP, anyArray());
  auto Contracted = contractibleArrays(FP, anyArray());
  EXPECT_TRUE(contains(Contracted, "R"));
  EXPECT_TRUE(contains(Contracted, "_T1"));
  EXPECT_TRUE(contains(Contracted, "_T2"));
  EXPECT_EQ(Contracted.size(), 3u);
  EXPECT_TRUE(isValidPartition(FP));
}

TEST(FusionForContractionTest, CompilerOnlyFilterSkipsUserTemps) {
  auto P = tp::makeTomcatvFragment();
  normalizeProgram(*P);
  ASDG G = ASDG::build(*P);
  FusionPartition FP = FusionPartition::trivial(G);
  fuseForContraction(FP, compilerTempsOnly());
  auto Contracted = contractibleArrays(FP, compilerTempsOnly());
  EXPECT_FALSE(contains(Contracted, "R"));
  EXPECT_TRUE(contains(Contracted, "_T1"));
  EXPECT_TRUE(contains(Contracted, "_T2"));
}

TEST(FusionForLocalityTest, FusesIndependentReaders) {
  // Figure 5 fragment (1): B = A+A; C = A*A. No dependences; locality
  // fusion merges the two statements to reuse A.
  Program P("frag1");
  const Region *R = P.regionFromExtents({8, 8});
  ArraySymbol *A = P.makeArray("A", 2);
  ArraySymbol *B = P.makeArray("B", 2);
  ArraySymbol *C = P.makeArray("C", 2);
  P.assign(R, B, add(aref(A), aref(A)));
  P.assign(R, C, mul(aref(A), aref(A)));
  ASDG G = ASDG::build(P);
  FusionPartition FP = FusionPartition::trivial(G);
  EXPECT_EQ(fuseForContraction(FP, anyArray()), 0u); // nothing contractible
  EXPECT_EQ(fuseForLocality(FP), 1u);
  EXPECT_EQ(FP.numClusters(), 1u);
}

TEST(FusionTest, PairwiseFusesEverythingLegal) {
  Program P("pairwise");
  const Region *R = P.regionFromExtents({8});
  ArraySymbol *A = P.makeArray("A", 1);
  ArraySymbol *B = P.makeArray("B", 1);
  ArraySymbol *C = P.makeArray("C", 1);
  ArraySymbol *D = P.makeArray("D", 1);
  P.assign(R, B, aref(A));
  P.assign(R, C, aref(A, {1}));
  P.assign(R, D, cst(0.0));
  ASDG G = ASDG::build(P);
  FusionPartition FP = FusionPartition::trivial(G);
  fuseAllPairwise(FP);
  EXPECT_EQ(FP.numClusters(), 1u);
  EXPECT_TRUE(isValidPartition(FP));
}

TEST(StrategyTest, BaselineDoesNothing) {
  auto P = tp::makeUserTempPair();
  ASDG G = ASDG::build(*P);
  StrategyResult SR = applyStrategy(G, Strategy::Baseline);
  EXPECT_EQ(SR.Partition.numClusters(), 2u);
  EXPECT_TRUE(SR.Contracted.empty());
}

TEST(StrategyTest, C2ContractsUserTemp) {
  auto P = tp::makeUserTempPair();
  ASDG G = ASDG::build(*P);
  StrategyResult SR = applyStrategy(G, Strategy::C2);
  EXPECT_EQ(SR.Partition.numClusters(), 1u);
  ASSERT_EQ(SR.Contracted.size(), 1u);
  EXPECT_EQ(SR.Contracted[0]->getName(), "B");
}

TEST(StrategyTest, F2FusesForUserButContractsCompilerOnly) {
  auto P = tp::makeTomcatvFragment();
  normalizeProgram(*P);
  ASDG G = ASDG::build(*P);
  StrategyResult SR = applyStrategy(G, Strategy::F2);
  // Fusion happened for R as well...
  EXPECT_LT(SR.Partition.numClusters(), 6u);
  // ...but only compiler temporaries are contracted.
  for (const ArraySymbol *A : SR.Contracted)
    EXPECT_TRUE(A->isCompilerTemp());
}

TEST(StrategyTest, F1FusesButContractsNothing) {
  auto P = tp::makeTomcatvFragment();
  normalizeProgram(*P);
  ASDG G = ASDG::build(*P);
  StrategyResult SR = applyStrategy(G, Strategy::F1);
  EXPECT_TRUE(SR.Contracted.empty());
}

TEST(StrategyTest, AllStrategiesProduceValidPartitions) {
  auto P = tp::makeTomcatvFragment();
  normalizeProgram(*P);
  ASDG G = ASDG::build(*P);
  for (Strategy S : allStrategiesForTest()) {
    StrategyResult SR = applyStrategy(G, S);
    EXPECT_TRUE(isValidPartition(SR.Partition)) << getStrategyName(S);
    // Contracted arrays must satisfy Definition 6 in the final partition.
    for (const ArraySymbol *A : SR.Contracted)
      EXPECT_TRUE(isContractible(SR.Partition, A)) << A->getName();
  }
}

TEST(StrategyTest, NamesAreStable) {
  EXPECT_STREQ(getStrategyName(Strategy::Baseline), "baseline");
  EXPECT_STREQ(getStrategyName(Strategy::C2F3), "c2+f3");
  EXPECT_STREQ(getStrategyName(Strategy::C2F4), "c2+f4");
  EXPECT_EQ(allStrategies().size(), 8u);
}

} // namespace

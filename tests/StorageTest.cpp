//===- tests/StorageTest.cpp - Storage and generator unit tests --------------===//

#include "exec/Storage.h"

#include "analysis/Footprint.h"
#include "ir/Generator.h"
#include "ir/Normalize.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

#include <set>

using namespace alf;
using namespace alf::analysis;
using namespace alf::exec;
using namespace alf::ir;

namespace {

TEST(ArrayBufferTest, RowMajorIndexing) {
  Program P("t");
  ArraySymbol *A = P.makeArray("A", 2);
  ArrayBuffer Buf(A, Region({0, 1}, {3, 8}), 4096);
  // 4 x 8 elements; strides (8, 1).
  EXPECT_EQ(Buf.linearIndex({0, 1}), 0);
  EXPECT_EQ(Buf.linearIndex({0, 8}), 7);
  EXPECT_EQ(Buf.linearIndex({1, 1}), 8);
  EXPECT_EQ(Buf.linearIndex({3, 8}), 31);
  EXPECT_EQ(Buf.sizeBytes(), 32u * 8u);
  EXPECT_EQ(Buf.addrOf({0, 1}), 4096u);
  EXPECT_EQ(Buf.addrOf({1, 1}), 4096u + 64u);
}

TEST(ArrayBufferTest, LoadStoreRoundTrip) {
  Program P("t");
  ArraySymbol *A = P.makeArray("A", 1);
  ArrayBuffer Buf(A, Region({1}, {10}), 0);
  Buf.store({3}, 2.5);
  EXPECT_DOUBLE_EQ(Buf.load({3}), 2.5);
  EXPECT_DOUBLE_EQ(Buf.load({4}), 0.0);
}

TEST(ArrayBufferTest, FillRandomDeterministic) {
  Program P("t");
  ArraySymbol *A = P.makeArray("A", 1);
  ArrayBuffer B1(A, Region({1}, {64}), 0);
  ArrayBuffer B2(A, Region({1}, {64}), 0);
  B1.fillRandom(5);
  B2.fillRandom(5);
  for (int64_t I = 1; I <= 64; ++I)
    EXPECT_EQ(B1.load({I}), B2.load({I}));
  B2.fillRandom(6);
  bool AnyDiff = false;
  for (int64_t I = 1; I <= 64; ++I)
    AnyDiff |= B1.load({I}) != B2.load({I});
  EXPECT_TRUE(AnyDiff);
}

TEST(StorageTest, AllocatesByFilterAndSeedsLiveIn) {
  Program P("t");
  const Region *R = P.regionFromExtents({8});
  ArraySymbol *A = P.makeArray("A", 1);       // live-in
  ArraySymbol *T = P.makeUserTemp("T", 1);    // zero-initialized
  ScalarSymbol *S = P.makeScalar("alpha");
  P.assign(R, T, add(aref(A), sref(S)));
  FootprintInfo FI = FootprintInfo::compute(P);

  Storage St = Storage::allocate(P, FI, 11,
                                 [](const ArraySymbol *) { return true; });
  ASSERT_NE(St.buffer(A), nullptr);
  ASSERT_NE(St.buffer(T), nullptr);
  // Live-in array seeded, temp zeroed.
  bool AnyNonZero = false;
  for (double V : St.buffer(A)->raw())
    AnyNonZero |= V != 0.0;
  EXPECT_TRUE(AnyNonZero);
  for (double V : St.buffer(T)->raw())
    EXPECT_EQ(V, 0.0);
  // Scalars in [0.5, 1.5).
  double Alpha = St.getScalar(S);
  EXPECT_GE(Alpha, 0.5);
  EXPECT_LT(Alpha, 1.5);

  Storage None = Storage::allocate(P, FI, 11,
                                   [](const ArraySymbol *) { return false; });
  EXPECT_EQ(None.buffer(A), nullptr);
  EXPECT_EQ(None.totalBytes(), 0u);
}

TEST(StorageTest, SeedsAreNameKeyed) {
  // The same array name gets the same contents regardless of the rest of
  // the program — the property that makes cross-strategy runs comparable.
  Program P1("p1"), P2("p2");
  const Region *R1 = P1.regionFromExtents({16});
  const Region *R2 = P2.regionFromExtents({16});
  ArraySymbol *A1 = P1.makeArray("A", 1);
  ArraySymbol *Z = P2.makeArray("Z", 1); // extra symbol shifts ids
  (void)Z;
  ArraySymbol *A2 = P2.makeArray("A", 1);
  ArraySymbol *B1 = P1.makeArray("B1", 1);
  ArraySymbol *B2 = P2.makeArray("B2", 1);
  P1.assign(R1, B1, aref(A1));
  P2.assign(R2, B2, aref(A2));
  Storage S1 = Storage::allocate(P1, FootprintInfo::compute(P1), 99,
                                 [](const ArraySymbol *) { return true; });
  Storage S2 = Storage::allocate(P2, FootprintInfo::compute(P2), 99,
                                 [](const ArraySymbol *) { return true; });
  EXPECT_EQ(S1.buffer(A1)->raw(), S2.buffer(A2)->raw());
}

TEST(StorageTest, BoundsOverride) {
  Program P("t");
  const Region *R = P.regionFromExtents({8, 8});
  ArraySymbol *A = P.makeArray("A", 2);
  ArraySymbol *B = P.makeArray("B", 2);
  P.assign(R, B, aref(A));
  FootprintInfo FI = FootprintInfo::compute(P);
  Storage St = Storage::allocate(
      P, FI, 1, [](const ArraySymbol *) { return true; },
      [&A](const ArraySymbol *Sym) -> std::optional<Region> {
        if (Sym == A)
          return Region({0, 0}, {1, 7}); // 2 x 8 rolling buffer
        return std::nullopt;
      });
  EXPECT_EQ(St.buffer(A)->sizeBytes(), 2u * 8u * 8u);
  EXPECT_EQ(St.buffer(B)->sizeBytes(), 64u * 8u);
}

TEST(StorageTest, HashNameStable) {
  EXPECT_EQ(hashName("A"), hashName("A"));
  EXPECT_NE(hashName("A"), hashName("B"));
  // FNV-1a of "A" — pinned because the emitted C replicates it.
  EXPECT_EQ(hashName("A"), 0xaf63fc4c860222ecULL);
}

TEST(GeneratorTest, DeterministicInSeed) {
  GeneratorConfig Cfg;
  Cfg.Seed = 123;
  auto P1 = generateRandomProgram(Cfg);
  auto P2 = generateRandomProgram(Cfg);
  EXPECT_EQ(P1->str(), P2->str());
  Cfg.Seed = 124;
  auto P3 = generateRandomProgram(Cfg);
  EXPECT_NE(P1->str(), P3->str());
}

TEST(GeneratorTest, RespectsConfig) {
  GeneratorConfig Cfg;
  Cfg.Seed = 5;
  Cfg.NumStmts = 12;
  Cfg.NumPersistent = 2;
  Cfg.NumTemps = 4;
  Cfg.AddOpaque = true;
  auto P = generateRandomProgram(Cfg);
  EXPECT_EQ(P->numStmts(), 13u); // 12 + opaque
  EXPECT_EQ(P->arrays().size(), 6u);
  normalizeProgram(*P);
  EXPECT_TRUE(isWellFormed(*P));
}

TEST(GeneratorTest, NoSelfRefWhenDisabled) {
  GeneratorConfig Cfg;
  Cfg.Seed = 31;
  Cfg.AllowSelfRef = false;
  Cfg.NumStmts = 20;
  auto P = generateRandomProgram(Cfg);
  // Without self references the program is already in normal form.
  EXPECT_EQ(normalizeProgram(*P), 0u);
}

} // namespace

//===- tests/ToolOptionsTest.cpp - shared CLI flag surface tests ------------===//
//
// The flag surface every ALF tool shares (tools/ToolOptions.h): parse
// outcomes for each flag, mask gating, error messages, and the golden
// help text that keeps --help consistent across zplc, alf_stress,
// alf_bench, alfd, alfc and alfd_load.
//
//===----------------------------------------------------------------------===//

#include "ToolOptions.h"

#include <gtest/gtest.h>

using namespace alf;
using namespace alf::tool;

namespace {

FlagParse parse(const std::string &Arg, unsigned Flags, ToolOptions &TO) {
  std::string Error;
  return parseToolFlag(Arg, Flags, TO, Error);
}

TEST(ToolOptionsTest, DefaultsMatchTheHistoricalToolDefaults) {
  ToolOptions TO;
  EXPECT_FALSE(TO.Strat.has_value());
  EXPECT_FALSE(TO.Exec.has_value());
  EXPECT_EQ(TO.Verify, verify::VerifyLevel::Full);
  EXPECT_FALSE(TO.VerifySet);
  EXPECT_TRUE(TO.TraceFile.empty());
  EXPECT_FALSE(TO.Metrics);
  EXPECT_EQ(TO.Seed, 1u);
  EXPECT_EQ(TO.SemiringSel, nullptr);
}

TEST(ToolOptionsTest, ConsumesEveryFlagKind) {
  ToolOptions TO;
  EXPECT_EQ(parse("--strategy=c2+f3", TF_All, TO), FlagParse::Consumed);
  EXPECT_EQ(TO.Strat, xform::Strategy::C2F3);
  EXPECT_EQ(parse("--exec=jit", TF_All, TO), FlagParse::Consumed);
  EXPECT_EQ(TO.Exec, xform::ExecMode::NativeJit);
  EXPECT_EQ(parse("--verify=structural", TF_All, TO), FlagParse::Consumed);
  EXPECT_EQ(TO.Verify, verify::VerifyLevel::Structural);
  EXPECT_TRUE(TO.VerifySet);
  EXPECT_EQ(parse("--verify=safety", TF_All, TO), FlagParse::Consumed);
  EXPECT_EQ(TO.Verify, verify::VerifyLevel::Safety);
  EXPECT_EQ(parse("--trace=out.json", TF_All, TO), FlagParse::Consumed);
  EXPECT_EQ(TO.TraceFile, "out.json");
  EXPECT_EQ(parse("--metrics", TF_All, TO), FlagParse::Consumed);
  EXPECT_TRUE(TO.Metrics);
  EXPECT_EQ(parse("--seed=42", TF_All, TO), FlagParse::Consumed);
  EXPECT_EQ(TO.Seed, 42u);
  EXPECT_EQ(parse("--semiring=min-plus", TF_All, TO), FlagParse::Consumed);
  EXPECT_EQ(TO.SemiringSel, &semiring::minPlus());
}

TEST(ToolOptionsTest, MaskGatesFlagsToNotMine) {
  ToolOptions TO;
  // A flag outside the tool's mask is NotMine, never an error — the
  // tool reports it with its own usage text.
  EXPECT_EQ(parse("--strategy=c2", TF_Trace | TF_Metrics, TO),
            FlagParse::NotMine);
  EXPECT_EQ(parse("--seed=9", TF_Strategy, TO), FlagParse::NotMine);
  EXPECT_EQ(parse("--semiring=or-and", TF_Strategy | TF_Seed, TO),
            FlagParse::NotMine);
  EXPECT_FALSE(TO.Strat.has_value());
  EXPECT_EQ(TO.Seed, 1u);
  EXPECT_EQ(TO.SemiringSel, nullptr);
  // Unrelated arguments are NotMine too.
  EXPECT_EQ(parse("--count=50", TF_All, TO), FlagParse::NotMine);
  EXPECT_EQ(parse("prog.zpl", TF_All, TO), FlagParse::NotMine);
}

TEST(ToolOptionsTest, BadValuesAreErrorsWithoutToolPrefix) {
  ToolOptions TO;
  std::string Error;
  EXPECT_EQ(parseToolFlag("--strategy=bogus", TF_All, TO, Error),
            FlagParse::Error);
  EXPECT_EQ(Error, "unknown strategy 'bogus'");
  EXPECT_EQ(parseToolFlag("--exec=warp", TF_All, TO, Error),
            FlagParse::Error);
  EXPECT_EQ(Error, "unknown execution mode 'warp'");
  EXPECT_EQ(parseToolFlag("--verify=maybe", TF_All, TO, Error),
            FlagParse::Error);
  EXPECT_EQ(Error, "unknown verification level 'maybe'");
  EXPECT_EQ(parseToolFlag("--trace=", TF_All, TO, Error), FlagParse::Error);
  EXPECT_EQ(Error, "--trace needs a file name");
  EXPECT_EQ(parseToolFlag("--semiring=frob", TF_All, TO, Error),
            FlagParse::Error);
  EXPECT_EQ(Error, "unknown semiring 'frob' (expected "
                   "plus-times|min-plus|max-times|max-plus|or-and)");
}

TEST(ToolOptionsTest, GoldenHelpText) {
  // The full surface, in its pinned order. Tools embed this text in
  // their --help/usage output, so a change here changes every tool.
  EXPECT_EQ(
      toolFlagsHelp(TF_All),
      "  --strategy=baseline|f1|c1|f2|f3|c2|c2+f3|c2+f4|ilp\n"
      "                         fusion/contraction strategy (default c2)\n"
      "  --exec=sequential|parallel|jit|jit-simd\n"
      "                         execution mode\n"
      "  --verify=off|structural|full|safety\n"
      "                         translation-validation level (default full)\n"
      "  --semiring=plus-times|min-plus|max-times|max-plus|or-and\n"
      "                         reduction algebra override\n"
      "  --seed=N               input-data seed (default 1)\n"
      "  --trace=FILE           write a Chrome trace of every phase and "
      "kernel\n"
      "  --metrics              print the aggregated per-span timing "
      "table\n");
}

TEST(ToolOptionsTest, HelpTextFollowsTheMask) {
  EXPECT_EQ(toolFlagsHelp(TF_Metrics),
            "  --metrics              print the aggregated per-span timing "
            "table\n");
  EXPECT_EQ(toolFlagsHelp(0), "");
  // Each enabled flag contributes its own line(s); disabled ones none.
  std::string TraceAndSeed = toolFlagsHelp(TF_Trace | TF_Seed);
  EXPECT_NE(TraceAndSeed.find("--trace=FILE"), std::string::npos);
  EXPECT_NE(TraceAndSeed.find("--seed=N"), std::string::npos);
  EXPECT_EQ(TraceAndSeed.find("--strategy"), std::string::npos);
}

} // namespace

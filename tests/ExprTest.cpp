//===- tests/ExprTest.cpp - Expression tree unit tests ---------------------===//

#include "ir/Expr.h"
#include "ir/Program.h"

#include <gtest/gtest.h>

using namespace alf;
using namespace alf::ir;

namespace {

class ExprTest : public ::testing::Test {
protected:
  Program P{"expr-test"};
  ArraySymbol *A = P.makeArray("A", 2);
  ArraySymbol *B = P.makeArray("B", 2);
  ScalarSymbol *S = P.makeScalar("alpha");
};

TEST_F(ExprTest, ConstPrinting) {
  EXPECT_EQ(cst(2.5)->str(), "2.5");
  EXPECT_EQ(cst(-1)->str(), "-1");
}

TEST_F(ExprTest, RefPrinting) {
  EXPECT_EQ(aref(A)->str(), "A");
  EXPECT_EQ(aref(A, {0, -1})->str(), "A@(0,-1)");
  EXPECT_EQ(sref(S)->str(), "alpha");
}

TEST_F(ExprTest, BinaryPrinting) {
  ExprPtr E = add(aref(A, {-1, 0}), mul(aref(B), cst(0.5)));
  EXPECT_EQ(E->str(), "(A@(-1,0) + (B * 0.5))");
  EXPECT_EQ(emin(aref(A), aref(B))->str(), "min(A, B)");
}

TEST_F(ExprTest, UnaryPrinting) {
  EXPECT_EQ(neg(aref(A))->str(), "-(A)");
  EXPECT_EQ(esqrt(aref(A))->str(), "sqrt(A)");
  EXPECT_EQ(recip(aref(B))->str(), "recip(B)");
}

TEST_F(ExprTest, CloneProducesEqualTree) {
  ExprPtr E = sub(esqrt(aref(A, {1, 1})), div(sref(S), cst(3)));
  ExprPtr C = E->clone();
  EXPECT_NE(E.get(), C.get());
  EXPECT_EQ(E->str(), C->str());
}

TEST_F(ExprTest, CollectArrayRefsLeftToRight) {
  ExprPtr E = add(aref(A, {0, 1}), mul(aref(B), aref(A)));
  auto Refs = collectArrayRefs(E.get());
  ASSERT_EQ(Refs.size(), 3u);
  EXPECT_EQ(Refs[0]->getSymbol(), A);
  EXPECT_EQ(Refs[0]->getOffset(), Offset({0, 1}));
  EXPECT_EQ(Refs[1]->getSymbol(), B);
  EXPECT_EQ(Refs[2]->getSymbol(), A);
  EXPECT_TRUE(Refs[2]->getOffset().isZero());
}

TEST_F(ExprTest, CountOps) {
  EXPECT_EQ(countOps(cst(1.0).get()), 0u);
  EXPECT_EQ(countOps(aref(A).get()), 0u);
  ExprPtr E = add(aref(A), mul(aref(B), neg(cst(2))));
  EXPECT_EQ(countOps(E.get()), 3u);
}

TEST_F(ExprTest, EvaluateBinaryOpcodes) {
  using Op = BinaryExpr::Opcode;
  EXPECT_DOUBLE_EQ(BinaryExpr::evaluate(Op::Add, 2, 3), 5);
  EXPECT_DOUBLE_EQ(BinaryExpr::evaluate(Op::Sub, 2, 3), -1);
  EXPECT_DOUBLE_EQ(BinaryExpr::evaluate(Op::Mul, 2, 3), 6);
  EXPECT_NEAR(BinaryExpr::evaluate(Op::Div, 6, 3), 2, 1e-9);
  EXPECT_DOUBLE_EQ(BinaryExpr::evaluate(Op::Min, 2, 3), 2);
  EXPECT_DOUBLE_EQ(BinaryExpr::evaluate(Op::Max, 2, 3), 3);
}

TEST_F(ExprTest, EvaluateUnaryOpcodes) {
  using Op = UnaryExpr::Opcode;
  EXPECT_DOUBLE_EQ(UnaryExpr::evaluate(Op::Neg, 2), -2);
  EXPECT_DOUBLE_EQ(UnaryExpr::evaluate(Op::Abs, -2), 2);
  EXPECT_DOUBLE_EQ(UnaryExpr::evaluate(Op::Sqrt, 4), 2);
  EXPECT_NEAR(UnaryExpr::evaluate(Op::Recip, 4), 0.25, 1e-9);
}

TEST_F(ExprTest, RewriteArrayRefsToScalars) {
  ScalarSymbol *SB = P.makeScalar("s_B");
  ExprPtr E = add(aref(A), mul(aref(B), cst(2)));
  ExprPtr R = cloneExprRewriting(E.get(), [&](const ArrayRefExpr &Ref) -> ExprPtr {
    if (Ref.getSymbol() == B)
      return sref(SB);
    return nullptr;
  });
  EXPECT_EQ(R->str(), "(A + (s_B * 2))");
  // Original untouched.
  EXPECT_EQ(E->str(), "(A + (B * 2))");
}

TEST_F(ExprTest, WalkVisitsAllNodes) {
  ExprPtr E = add(aref(A), mul(sref(S), cst(2)));
  unsigned Count = 0;
  walkExpr(E.get(), [&Count](const Expr *) { ++Count; });
  EXPECT_EQ(Count, 5u);
}

} // namespace

//===- tests/LintTest.cpp - Golden tests for the frontend lint -------------===//
//
// Pins the exact diagnostic text, source positions and exit codes of
// verify::lintProgram as driven by `zplc --lint`: parse a source string,
// lint with the parser's statement positions, and compare the rendered
// output verbatim. Any change to message wording, ordering or position
// tracking shows up as a golden diff here.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "verify/Lint.h"

#include <gtest/gtest.h>

using namespace alf;

namespace {

verify::LintResult lintSource(const std::string &Source) {
  frontend::ParseResult R = frontend::parseProgram(Source, "test");
  EXPECT_TRUE(R.succeeded());
  EXPECT_EQ(R.StmtPositions.size(), R.Prog->numStmts());
  return verify::lintProgram(*R.Prog, R.StmtPositions);
}

TEST(LintTest, GoldenDiagnosticsPositionsAndExitCode) {
  // Line numbers matter: the raw string starts with a newline, so
  // "region R" is line 2 and the first statement line 8.
  const char *Source = R"(
region R : [1..8, 1..8];
region Row : [1..8];
array A, B : R;
array T : R temp;
array V : Row;
array W : R;
[R] T := A * 2.0;
[R] B := T@(1,0) + A;
[R] B := V + B;
[R] T := B * 0.5;
)";
  verify::LintResult LR = lintSource(Source);
  // Row 9 of T@(1,0) is outside every write of T in the program, so the
  // halo read escalates to the out-of-range error.
  EXPECT_EQ(LR.render("test.zpl"),
            "test.zpl:9:1: error: reference T@(1,0) reads elements of T "
            "that no statement ever writes (out-of-range offset)\n"
            "test.zpl:10:1: error: array V has rank 1 but the statement's "
            "region has rank 2\n"
            "test.zpl:11:1: warning: dead statement: T is not live-out and "
            "this value is never read\n"
            "test.zpl: warning: array W is declared but never referenced\n");
  EXPECT_TRUE(LR.hasErrors());
  EXPECT_EQ(LR.exitCode(), 1);
}

TEST(LintTest, ReadBeforeWriteOfTempIsAnError) {
  const char *Source = R"(
region R : [1..4, 1..4];
array A : R;
array T : R temp;
[R] A := T@(1,0) + 1.0;
[R] T := A * 2.0;
)";
  verify::LintResult LR = lintSource(Source);
  EXPECT_EQ(LR.render("t.zpl"),
            "t.zpl:5:1: error: T is read before it is written (and is not "
            "live-in)\n"
            "t.zpl:6:1: warning: dead statement: T is not live-out and this "
            "value is never read\n");
  EXPECT_EQ(LR.exitCode(), 1);
}

TEST(LintTest, OutOfRangeConstantOffsetIsAnError) {
  // T@(0,1) reaches column 5, which no statement ever writes: the offset
  // itself is out of range, not merely read too early.
  const char *Source = R"(
region R : [1..4, 1..4];
array A : R;
array T : R temp;
[R] T := A;
[R] A := T@(0,1) + T;
)";
  verify::LintResult LR = lintSource(Source);
  EXPECT_EQ(LR.render("oob.zpl"),
            "oob.zpl:6:1: error: reference T@(0,1) reads elements of T that "
            "no statement ever writes (out-of-range offset)\n");
  EXPECT_EQ(LR.exitCode(), 1);
}

TEST(LintTest, HaloCoveredByALaterWriteStaysAWarning) {
  // The same shaped read stays an ordering warning when a later statement
  // does write the halo: the elements exist, they are just not written
  // yet at the point of the read.
  const char *Source = R"(
region R : [1..6, 1..6];
region Edge : [1..7, 1..6];
array A : R;
array T : R temp;
[R] T := A;
[R] A := T@(1,0) * 0.5;
[Edge] T := A;
)";
  verify::LintResult LR = lintSource(Source);
  EXPECT_EQ(LR.render("halo.zpl"),
            "halo.zpl:7:1: warning: reference T@(1,0) reaches elements of T "
            "outside the footprint written so far (uninitialized halo "
            "reads)\n"
            "halo.zpl:8:1: warning: dead statement: T is not live-out and "
            "this value is never read\n");
  EXPECT_EQ(LR.exitCode(), 0);
}

TEST(LintTest, CleanProgramHasNoDiagnosticsAndExitsZero) {
  const char *Source = R"(
region R : [1..8, 1..8];
array U, Unew : R;
array Res : R temp;
scalar maxres;
[R] Res := (U@(-1,0) + U@(1,0) + U@(0,-1) + U@(0,1)) * 0.25 - U;
[R] Unew := U + Res * 0.8;
[R] maxres := max << abs(Res);
)";
  verify::LintResult LR = lintSource(Source);
  EXPECT_EQ(LR.render("jacobi.zpl"), "");
  EXPECT_FALSE(LR.hasErrors());
  EXPECT_EQ(LR.exitCode(), 0);
}

TEST(LintTest, LiveInReadsAreNotFlagged) {
  // Persistent arrays carry values into the fragment: reading them first
  // is fine, including through offsets (their halo is the caller's
  // responsibility, not an uninitialized read).
  const char *Source = R"(
region R : [1..4, 1..4];
array A, B : R;
[R] B := A@(1,1) + A;
)";
  verify::LintResult LR = lintSource(Source);
  EXPECT_EQ(LR.render("ok.zpl"), "");
  EXPECT_EQ(LR.exitCode(), 0);
}

TEST(LintTest, MissingPositionsRenderWithoutLineAndColumn) {
  // Lint stays usable for programs built directly against the IR (no
  // parser): diagnostics simply omit positions.
  frontend::ParseResult R = frontend::parseProgram(R"(
region R : [1..4, 1..4];
array A : R;
array T : R temp;
[R] A := T + 1.0;
[R] T := A;
)",
                                                   "test");
  ASSERT_TRUE(R.succeeded());
  verify::LintResult LR = verify::lintProgram(*R.Prog, /*StmtPositions=*/{});
  EXPECT_EQ(LR.render("x.zpl"),
            "x.zpl: error: T is read before it is written (and is not "
            "live-in)\n"
            "x.zpl: warning: dead statement: T is not live-out and this "
            "value is never read\n");
  EXPECT_EQ(LR.exitCode(), 1);
}

} // namespace

//===- tests/DistSimTest.cpp - Distributed execution tests -------------------===//
//
// The SPMD simulator must agree with the sequential interpreter on every
// program whose communication was inserted by the compiler — and must
// *disagree* when a needed exchange is omitted (the negative control
// that proves the test has teeth).
//
//===----------------------------------------------------------------------===//

#include "distsim/DistInterpreter.h"

#include "analysis/ASDG.h"
#include "benchprogs/Benchmarks.h"
#include "comm/CommInsertion.h"
#include "ir/Generator.h"
#include "ir/Normalize.h"
#include "scalarize/Scalarize.h"

#include <gtest/gtest.h>

using namespace alf;
using namespace alf::analysis;
using namespace alf::distsim;
using namespace alf::exec;
using namespace alf::ir;
using namespace alf::machine;
using namespace alf::xform;

namespace {

TEST(BlockDistTest, SlicesCoverAndPartition) {
  // [1..10] over 3 parts: 4+3+3.
  EXPECT_EQ(blockSlice(1, 10, 3, 0).Lo, 1);
  EXPECT_EQ(blockSlice(1, 10, 3, 0).Hi, 4);
  EXPECT_EQ(blockSlice(1, 10, 3, 1).Lo, 5);
  EXPECT_EQ(blockSlice(1, 10, 3, 1).Hi, 7);
  EXPECT_EQ(blockSlice(1, 10, 3, 2).Lo, 8);
  EXPECT_EQ(blockSlice(1, 10, 3, 2).Hi, 10);
  // Single part: everything.
  EXPECT_EQ(blockSlice(0, 5, 1, 0).extent(), 6);
}

TEST(BlockDistTest, CoordsAndNeighbors) {
  ProcGrid G = ProcGrid::make(6, 2); // 3 x 2
  ASSERT_EQ(G.Extents, (std::vector<unsigned>{3, 2}));
  EXPECT_EQ(procCoords(G, 0), (std::vector<unsigned>{0, 0}));
  EXPECT_EQ(procCoords(G, 5), (std::vector<unsigned>{2, 1}));
  EXPECT_EQ(neighborRank(G, {0, 0}, 0, 1), 2);  // (1,0)
  EXPECT_EQ(neighborRank(G, {0, 0}, 1, 1), 1);  // (0,1)
  EXPECT_EQ(neighborRank(G, {0, 0}, 0, -1), -1);
  EXPECT_EQ(neighborRank(G, {2, 1}, 1, 1), -1);
}

/// Pipeline shared by the equivalence tests.
RunResult runDist(Program &P, Strategy S, unsigned Procs, uint64_t Seed,
                  bool WithComm = true) {
  ASDG G = ASDG::build(P);
  auto LP = scalarize::scalarizeWithStrategy(G, S);
  if (WithComm)
    comm::insertLoopLevelComm(LP);
  unsigned Rank = 0;
  for (const Stmt *St : P.stmts()) {
    if (const auto *NS = dyn_cast<NormalizedStmt>(St))
      Rank = NS->getRegion()->rank();
    else if (const auto *RS = dyn_cast<ReduceStmt>(St))
      Rank = RS->getRegion()->rank();
  }
  return runDistributed(LP, ProcGrid::make(Procs, Rank), Seed);
}

RunResult runSeq(Program &P, Strategy S, uint64_t Seed) {
  ASDG G = ASDG::build(P);
  auto LP = scalarize::scalarizeWithStrategy(G, S);
  return run(LP, Seed);
}

std::unique_ptr<Program> makeStencilChain(int64_t N) {
  auto P = std::make_unique<Program>("chain");
  const Region *R = P->regionFromExtents({N, N});
  ArraySymbol *A = P->makeArray("A", 2);
  ArraySymbol *T = P->makeUserTemp("T", 2);
  ArraySymbol *B = P->makeArray("B", 2);
  ArraySymbol *C = P->makeArray("C", 2);
  P->assign(R, T, add(aref(A), cst(1.0)));
  P->assign(R, B,
            add(add(aref(A, {-1, 0}), aref(A, {1, 0})),
                add(aref(A, {0, -1}), mul(aref(T), cst(0.5)))));
  P->assign(R, C, add(aref(B, {1, 0}), aref(B)));
  return P;
}

TEST(DistSimTest, StencilMatchesSequentialAcrossGrids) {
  for (unsigned Procs : {1u, 4u, 9u, 16u}) {
    auto P = makeStencilChain(12);
    RunResult Seq = runSeq(*P, Strategy::Baseline, 21);
    RunResult Dist = runDist(*P, Strategy::Baseline, Procs, 21);
    std::string Why;
    EXPECT_TRUE(resultsMatch(Seq, Dist, 0.0, &Why))
        << Procs << " procs: " << Why;
  }
}

TEST(DistSimTest, ContractionAndCommAgree) {
  auto P = makeStencilChain(12);
  RunResult Seq = runSeq(*P, Strategy::C2F3, 22);
  auto P2 = makeStencilChain(12);
  RunResult Dist = runDist(*P2, Strategy::C2F3, 4, 22);
  std::string Why;
  EXPECT_TRUE(resultsMatch(Seq, Dist, 0.0, &Why)) << Why;
}

TEST(DistSimTest, MissingExchangeIsDetected) {
  // Negative control: without the halo exchange after A is rewritten,
  // neighbouring blocks read stale values and the results differ.
  auto Build = [] {
    auto P = std::make_unique<Program>("stale");
    const Region *R = P->regionFromExtents({12, 12});
    ArraySymbol *A = P->makeArray("A", 2);
    ArraySymbol *B = P->makeArray("B", 2);
    P->assign(R, A, mul(aref(B), cst(2.0)));       // rewrite A
    P->assign(R, B, add(aref(A, {1, 0}), cst(1.0))); // then read its halo
    return P;
  };
  auto P1 = Build();
  RunResult Seq = runSeq(*P1, Strategy::Baseline, 5);
  auto P2 = Build();
  RunResult NoComm = runDist(*P2, Strategy::Baseline, 4, 5,
                             /*WithComm=*/false);
  EXPECT_FALSE(resultsMatch(Seq, NoComm));
  auto P3 = Build();
  RunResult WithComm = runDist(*P3, Strategy::Baseline, 4, 5);
  std::string Why;
  EXPECT_TRUE(resultsMatch(Seq, WithComm, 0.0, &Why)) << Why;
}

TEST(DistSimTest, ReductionsCombineAcrossProcessors) {
  Program P("reduce");
  const Region *R = P.regionFromExtents({16, 16});
  ArraySymbol *A = P.makeArray("A", 2);
  ScalarSymbol *Sum = P.makeScalar("sum");
  ScalarSymbol *Hi = P.makeScalar("hi");
  P.reduce(R, Sum, ReduceStmt::ReduceOpKind::Sum, mul(aref(A), aref(A)));
  P.reduce(R, Hi, ReduceStmt::ReduceOpKind::Max, aref(A));
  RunResult Seq = runSeq(P, Strategy::Baseline, 31);
  RunResult Dist = runDist(P, Strategy::Baseline, 4, 31);
  std::string Why;
  EXPECT_TRUE(resultsMatch(Seq, Dist, 1e-9, &Why)) << Why;
}

TEST(DistSimTest, CornerValuesPropagateThroughSequencedExchanges) {
  // A diagonal reference needs corner halo cells, which are only correct
  // if the dimension-1 exchange forwards the dimension-0 exchange's data.
  Program P("corner");
  const Region *R = P.regionFromExtents({12, 12});
  ArraySymbol *A = P.makeArray("A", 2);
  ArraySymbol *B = P.makeArray("B", 2);
  ArraySymbol *C = P.makeArray("C", 2);
  P.assign(R, A, mul(aref(C), cst(3.0)));
  P.assign(R, B, aref(A, {-1, -1}));
  RunResult Seq = runSeq(P, Strategy::Baseline, 41);
  RunResult Dist = runDist(P, Strategy::Baseline, 9, 41);
  std::string Why;
  EXPECT_TRUE(resultsMatch(Seq, Dist, 0.0, &Why)) << Why;
}

TEST(DistSimTest, ArrayLevelPipelinedCommAgrees) {
  // Favor-communication pipeline: exchanges inserted at the array level
  // as send/recv pairs, data moving at the receive.
  auto P = makeStencilChain(12);
  comm::insertArrayLevelComm(*P, /*Pipelined=*/true);
  ASDG G = ASDG::build(*P);
  auto LP = scalarize::scalarizeWithStrategy(G, Strategy::C2F3);
  RunResult Dist = runDistributed(LP, ProcGrid::make(4, 2), 51);

  auto PSeq = makeStencilChain(12);
  RunResult Seq = runSeq(*PSeq, Strategy::Baseline, 51);
  std::string Why;
  EXPECT_TRUE(resultsMatch(Seq, Dist, 0.0, &Why)) << Why;
}

TEST(DistSimTest, RankOneProgram) {
  Program P("r1");
  const Region *R = P.regionFromExtents({40});
  ArraySymbol *A = P.makeArray("A", 1);
  ArraySymbol *B = P.makeArray("B", 1);
  P.assign(R, A, mul(aref(B), cst(0.5)));
  P.assign(R, B, add(aref(A, {-2}), aref(A, {2})));
  RunResult Seq = runSeq(P, Strategy::Baseline, 61);
  RunResult Dist = runDist(P, Strategy::Baseline, 4, 61);
  std::string Why;
  EXPECT_TRUE(resultsMatch(Seq, Dist, 0.0, &Why)) << Why;
}

class DistBenchmarks : public ::testing::TestWithParam<unsigned> {};

TEST_P(DistBenchmarks, BenchmarksMatchSequential) {
  const benchprogs::BenchmarkInfo &B =
      benchprogs::allBenchmarks()[GetParam()];
  auto P = B.Build(B.Rank == 1 ? 48 : 10);
  normalizeProgram(*P);
  ASDG G = ASDG::build(*P);

  auto Seq = scalarize::scalarizeWithStrategy(G, Strategy::C2F3);
  RunResult SeqRes = run(Seq, 71);

  auto LP = scalarize::scalarizeWithStrategy(G, Strategy::C2F3);
  comm::insertLoopLevelComm(LP);
  RunResult Dist = runDistributed(LP, ProcGrid::make(4, B.Rank), 71);
  std::string Why;
  EXPECT_TRUE(resultsMatch(SeqRes, Dist, 1e-9, &Why)) << B.Name << ": "
                                                      << Why;
}

INSTANTIATE_TEST_SUITE_P(AllSix, DistBenchmarks, ::testing::Range(0u, 6u),
                         [](const ::testing::TestParamInfo<unsigned> &Info) {
                           return benchprogs::allBenchmarks()[Info.param]
                               .Name;
                         });

class DistRandom : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DistRandom, RandomProgramsMatchSequential) {
  GeneratorConfig Cfg;
  Cfg.Seed = GetParam();
  Cfg.NumStmts = 5 + static_cast<unsigned>(GetParam() % 6);
  Cfg.Extent = 9;
  Cfg.AllowSelfRef = true;
  auto P = generateRandomProgram(Cfg);
  normalizeProgram(*P);
  RunResult Seq = runSeq(*P, Strategy::C2, GetParam());
  RunResult Dist = runDist(*P, Strategy::C2, 4, GetParam());
  std::string Why;
  EXPECT_TRUE(resultsMatch(Seq, Dist, 0.0, &Why))
      << "seed " << GetParam() << ": " << Why;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistRandom,
                         ::testing::Range<uint64_t>(1, 25));

} // namespace

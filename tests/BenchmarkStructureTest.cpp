//===- tests/BenchmarkStructureTest.cpp - Benchmark construction locks -------===//
//
// Locks the structural properties docs/BENCHMARKS.md documents: how many
// self-updates each benchmark performs (= compiler temporaries), which
// arrays persist, and the dependence shapes the experiments rely on.
//
//===----------------------------------------------------------------------===//

#include "benchprogs/Benchmarks.h"

#include "analysis/ASDG.h"
#include "ir/Normalize.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace alf;
using namespace alf::analysis;
using namespace alf::benchprogs;
using namespace alf::ir;

namespace {

struct Shape {
  unsigned Stmts = 0;
  unsigned Reduces = 0;
  unsigned SelfUpdates = 0; ///< statements normalization must split
  unsigned LiveOutArrays = 0;
};

Shape shapeOf(const BenchmarkInfo &B) {
  auto P = B.Build(8);
  Shape S;
  S.Stmts = P->numStmts();
  for (const Stmt *St : P->stmts()) {
    if (isa<ReduceStmt>(St))
      ++S.Reduces;
    if (const auto *NS = dyn_cast<NormalizedStmt>(St))
      if (NS->readsArray(NS->getLHS()))
        ++S.SelfUpdates;
  }
  for (const ArraySymbol *A : P->arrays())
    if (A->isLiveOut())
      ++S.LiveOutArrays;
  return S;
}

TEST(BenchmarkStructureTest, SelfUpdateCountsMatchCompilerTemporaries) {
  // Figure 7's compiler-array column comes from exactly these splits.
  for (const BenchmarkInfo &B : allBenchmarks()) {
    Shape S = shapeOf(B);
    EXPECT_EQ(S.SelfUpdates, B.PaperCompilerBefore) << B.Name;
    auto P = B.Build(8);
    EXPECT_EQ(normalizeProgram(*P), B.PaperCompilerBefore) << B.Name;
    EXPECT_TRUE(isWellFormed(*P)) << B.Name;
  }
}

TEST(BenchmarkStructureTest, EPIsAllTemporariesAndReductions) {
  Shape S = shapeOf(allBenchmarks()[0]);
  EXPECT_EQ(S.Reduces, 3u);
  EXPECT_EQ(S.LiveOutArrays, 0u); // everything dies into scalars
  EXPECT_EQ(S.SelfUpdates, 0u);
}

TEST(BenchmarkStructureTest, SPHasEightPhases) {
  // 8 phases x (14-ish chain + sweep defs + consumers + field update)
  // plus the closing 18 self-updates.
  Shape S = shapeOf(allBenchmarks()[2]);
  EXPECT_EQ(S.SelfUpdates, 18u);
  EXPECT_EQ(S.LiveOutArrays, 5u);
  EXPECT_GT(S.Stmts, 200u);
}

TEST(BenchmarkStructureTest, PersistentCountsAnchorTheAfterCensus) {
  struct Row {
    const char *Name;
    unsigned LiveOut;
  };
  const Row Rows[] = {{"EP", 0},     {"Frac", 1},  {"SP", 5},
                      {"Tomcatv", 7}, {"Simple", 20}, {"Fibro", 27}};
  for (const Row &R : Rows) {
    for (const BenchmarkInfo &B : allBenchmarks()) {
      if (B.Name != R.Name)
        continue;
      EXPECT_EQ(shapeOf(B).LiveOutArrays, R.LiveOut) << R.Name;
    }
  }
}

TEST(BenchmarkStructureTest, ProblemSizeParameterScalesRegions) {
  for (const BenchmarkInfo &B : allBenchmarks()) {
    auto Small = B.Build(6);
    auto Large = B.Build(12);
    EXPECT_EQ(Small->numStmts(), Large->numStmts()) << B.Name;
    // The region grows, the structure does not.
    const auto *NS1 = dyn_cast<NormalizedStmt>(Small->getStmt(0));
    const auto *NS2 = dyn_cast<NormalizedStmt>(Large->getStmt(0));
    if (NS1 && NS2) {
      EXPECT_LT(NS1->getRegion()->size(), NS2->getRegion()->size());
    }
  }
}

} // namespace

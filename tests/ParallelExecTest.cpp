//===- tests/ParallelExecTest.cpp - Parallel executor tests -----------------===//
//
// The parallel executor's contract: bit-identical results to the
// sequential interpreter for every thread count, with the UDV-based
// legality analysis deciding per nest, and contracted temporaries kept
// thread-private.
//
//===----------------------------------------------------------------------===//

#include "exec/ParallelExecutor.h"

#include "exec/Interpreter.h"
#include "ir/Generator.h"
#include "ir/Normalize.h"
#include "scalarize/Scalarize.h"
#include "support/Statistic.h"
#include "support/ThreadPool.h"
#include "xform/Parallelize.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

using namespace alf;
using namespace alf::analysis;
using namespace alf::exec;
using namespace alf::ir;
using namespace alf::xform;

namespace {

const unsigned ThreadCounts[] = {1, 2, 4, 7};

/// Sequential vs. parallel on every thread count, exact comparison.
void expectParallelMatches(const lir::LoopProgram &LP, uint64_t Seed) {
  RunResult Base = run(LP, Seed);
  for (unsigned T : ThreadCounts) {
    ParallelOptions Opts;
    Opts.NumThreads = T;
    std::string Why;
    EXPECT_TRUE(resultsMatch(Base, runParallel(LP, Seed, Opts), 0.0, &Why))
        << "threads=" << T << ": " << Why;
  }
}

TEST(ThreadPoolTest, ChunksPartitionTheRange) {
  for (int64_t Begin : {0, -3, 7}) {
    for (int64_t Size : {0, 1, 5, 16, 31}) {
      for (unsigned N : {1u, 2u, 4u, 7u}) {
        int64_t Covered = 0;
        int64_t PrevHi = Begin - 1;
        for (unsigned C = 0; C < N; ++C) {
          int64_t Lo, Hi;
          if (!ThreadPool::chunkBounds(Begin, Begin + Size, N, C, Lo, Hi))
            continue;
          EXPECT_EQ(Lo, PrevHi + 1); // contiguous, in order
          EXPECT_LE(Lo, Hi);
          Covered += Hi - Lo + 1;
          PrevHi = Hi;
        }
        EXPECT_EQ(Covered, Size);
        if (Size > 0)
          EXPECT_EQ(PrevHi, Begin + Size - 1);
      }
    }
  }
}

TEST(ThreadPoolTest, ParallelForRunsEveryIndexOnce) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.numThreads(), 4u);
  std::vector<std::atomic<int>> Hits(100);
  Pool.parallelFor(0, 100, [&](int64_t B, int64_t E, unsigned Worker) {
    EXPECT_LT(Worker, 4u);
    for (int64_t I = B; I < E; ++I)
      Hits[static_cast<size_t>(I)]++;
  });
  for (const auto &H : Hits)
    EXPECT_EQ(H.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossManyDispatches) {
  // Tile-with-barriers issues one dispatch per outer iteration; the pool
  // must survive hundreds of small jobs.
  ThreadPool Pool(3);
  std::atomic<int64_t> Sum{0};
  for (int Round = 0; Round < 200; ++Round)
    Pool.parallelFor(0, 10, [&](int64_t B, int64_t E, unsigned) {
      for (int64_t I = B; I < E; ++I)
        Sum += I;
    });
  EXPECT_EQ(Sum.load(), 200 * 45);
}

TEST(ParallelLegalityTest, ZeroDistancesParallelizeOutermost) {
  NestParallelInput In;
  In.LSV = LoopStructureVector::identity(2);
  In.UDVs = {Offset{0, 0}};
  NestParallelPlan Plan = analyzeNestParallelism(In);
  EXPECT_EQ(Plan.ParallelLoop, 0);
  EXPECT_EQ(Plan.Decision, ParallelDecision::OuterParallel);
}

TEST(ParallelLegalityTest, OuterCarriedFallsBackToInnerLoop) {
  NestParallelInput In;
  In.LSV = LoopStructureVector::identity(2);
  In.UDVs = {Offset{1, 0}};
  NestParallelPlan Plan = analyzeNestParallelism(In);
  EXPECT_EQ(Plan.ParallelLoop, 1);
  EXPECT_EQ(Plan.Decision, ParallelDecision::InnerParallel);
  EXPECT_TRUE(Plan.needsBarriers());
}

TEST(ParallelLegalityTest, InnerCarriedStillParallelizesOutermost) {
  // (0,1): carried by the inner loop only; the outer loop is free.
  NestParallelInput In;
  In.LSV = LoopStructureVector::identity(2);
  In.UDVs = {Offset{0, 1}};
  NestParallelPlan Plan = analyzeNestParallelism(In);
  EXPECT_EQ(Plan.ParallelLoop, 0);
}

TEST(ParallelLegalityTest, EveryLoopCarriedMeansSequential) {
  NestParallelInput In;
  In.LSV = LoopStructureVector::identity(2);
  In.UDVs = {Offset{1, 0}, Offset{0, 1}};
  NestParallelPlan Plan = analyzeNestParallelism(In);
  EXPECT_FALSE(Plan.isParallel());
  EXPECT_EQ(Plan.Decision, ParallelDecision::SeqCarried);
}

TEST(ParallelLegalityTest, ReductionIsNeverParallelized) {
  NestParallelInput In;
  In.LSV = LoopStructureVector::identity(2);
  In.UDVs = {Offset{0, 0}};
  In.HasReduction = true;
  NestParallelPlan Plan = analyzeNestParallelism(In);
  EXPECT_FALSE(Plan.isParallel());
  EXPECT_EQ(Plan.Decision, ParallelDecision::SeqReduction);
}

TEST(ParallelLegalityTest, WrappedDimensionIsSkipped) {
  NestParallelInput In;
  In.LSV = LoopStructureVector::identity(2);
  In.UDVs = {Offset{0, 0}};
  In.WrappedDims = {true, false};
  NestParallelPlan Plan = analyzeNestParallelism(In);
  EXPECT_EQ(Plan.ParallelLoop, 1);
  EXPECT_EQ(Plan.Decision, ParallelDecision::InnerParallel);
}

TEST(ParallelLegalityTest, ReversedLoopRespectsConstrainedDistance) {
  // LSV (-1,2): loop 0 runs dimension 1 downward, so UDV (-1,0) becomes
  // constrained distance (1,0) — carried by the (reversed) outer loop.
  NestParallelInput In;
  In.LSV = LoopStructureVector({-1, 2});
  In.UDVs = {Offset{-1, 0}};
  NestParallelPlan Plan = analyzeNestParallelism(In);
  EXPECT_EQ(Plan.ParallelLoop, 1);
}

TEST(ParallelExecTest, ElementwiseProgramMatchesAllThreadCounts) {
  auto P = tp::makeFigure2(12, 9);
  ASDG G = ASDG::build(*P);
  for (Strategy S : allStrategiesForTest()) {
    auto LP = scalarize::scalarizeWithStrategy(G, S);
    expectParallelMatches(LP, 101);
  }
}

TEST(ParallelExecTest, ContractedTempStaysThreadPrivate) {
  // Under C2 the user temp B contracts to a scalar; every worker must see
  // its own copy or tiles would clobber each other's element values.
  auto P = tp::makeUserTempPair(33); // not divisible by 2 or 4: ragged tiles
  ASDG G = ASDG::build(*P);
  auto LP = scalarize::scalarizeWithStrategy(G, Strategy::C2);

  // The temp really is contracted, and its nest really runs parallel —
  // otherwise this test exercises nothing.
  bool SawContraction = false;
  for (const ArraySymbol *A : LP.source().arrays())
    SawContraction |= LP.isContracted(A);
  ASSERT_TRUE(SawContraction);
  ParallelSchedule Sched = planParallelism(LP);
  ASSERT_GE(Sched.numParallelNests(), 1u);

  expectParallelMatches(LP, 202);
}

TEST(ParallelExecTest, OuterCarriedNestUsesBarriersAndMatches) {
  // S1 writes A, which S0 reads at @(1,0): an anti dependence with UDV
  // (1,0). Fusing both statements is legal (the identity LSV preserves
  // it), but the merged nest's outermost loop carries the dependence, so
  // the executor must fall back to tile-with-barriers on the inner loop.
  Program P("outer-carried");
  const Region *R = P.regionFromExtents({9, 7});
  ArraySymbol *A = P.makeArray("A", 2);
  ArraySymbol *B = P.makeArray("B", 2);
  ArraySymbol *C = P.makeArray("C", 2);
  P.assign(R, C, aref(A, {1, 0}));
  P.assign(R, A, add(aref(B), cst(1.0)));
  ASDG G = ASDG::build(P);

  StrategyResult SR;
  SR.Partition = FusionPartition::trivial(G);
  SR.Partition.merge({0, 1});
  ASSERT_TRUE(isValidPartition(SR.Partition));
  auto LP = scalarize::scalarize(G, SR);

  ParallelSchedule Sched = planParallelism(LP);
  const NestParallelPlan *Plan = Sched.planForNest(LP, 0);
  ASSERT_NE(Plan, nullptr);
  EXPECT_EQ(Plan->Decision, ParallelDecision::InnerParallel);
  EXPECT_EQ(Plan->ParallelLoop, 1);

  expectParallelMatches(LP, 303);
}

TEST(ParallelExecTest, FullyCarriedNestDetectedAndRunSequentially) {
  // Anti dependences with UDVs (1,0) and (0,1): every loop of the fused
  // nest carries one of them, so no loop is parallelizable.
  Program P("fully-carried");
  const Region *R = P.regionFromExtents({8, 8});
  ArraySymbol *A = P.makeArray("A", 2);
  ArraySymbol *B = P.makeArray("B", 2);
  ArraySymbol *C = P.makeArray("C", 2);
  ArraySymbol *D = P.makeArray("D", 2);
  P.assign(R, C, aref(A, {1, 0}));
  P.assign(R, D, aref(A, {0, 1}));
  P.assign(R, A, aref(B));
  ASDG G = ASDG::build(P);

  StrategyResult SR;
  SR.Partition = FusionPartition::trivial(G);
  SR.Partition.merge({0, 1, 2});
  ASSERT_TRUE(isValidPartition(SR.Partition));
  auto LP = scalarize::scalarize(G, SR);

  ParallelSchedule Sched = planParallelism(LP);
  const NestParallelPlan *Plan = Sched.planForNest(LP, 0);
  ASSERT_NE(Plan, nullptr);
  EXPECT_FALSE(Plan->isParallel());
  EXPECT_EQ(Plan->Decision, ParallelDecision::SeqCarried);

  expectParallelMatches(LP, 404);
}

TEST(ParallelExecTest, ReductionNestMatchesBitwise) {
  // The reducing nest stays sequential (legality), so even the scalar
  // accumulator is bitwise identical, not merely within tolerance.
  Program P("reduce");
  const Region *R = P.regionFromExtents({16, 16});
  ArraySymbol *A = P.makeArray("A", 2);
  ScalarSymbol *S = P.makeScalar("s");
  P.reduce(R, S, ReduceStmt::ReduceOpKind::Sum, aref(A));
  ASDG G = ASDG::build(P);
  auto LP = scalarize::scalarizeWithStrategy(G, Strategy::Baseline);

  ParallelSchedule Sched = planParallelism(LP);
  const NestParallelPlan *Plan = Sched.planForNest(LP, 0);
  ASSERT_NE(Plan, nullptr);
  EXPECT_EQ(Plan->Decision, ParallelDecision::SeqReduction);

  RunResult Base = run(LP, 7);
  for (unsigned T : ThreadCounts) {
    ParallelOptions Opts;
    Opts.NumThreads = T;
    RunResult Par = runParallel(LP, 7, Opts);
    ASSERT_EQ(Base.ScalarsOut.count("s"), 1u);
    EXPECT_EQ(Base.ScalarsOut.at("s"), Par.ScalarsOut.at("s"));
  }
}

TEST(ParallelExecTest, PartialContractionWrapsStayCorrect) {
  auto P = tp::makeFigure2(10, 10);
  ASDG G = ASDG::build(*P);
  auto LP = scalarize::scalarizeWithPartialContraction(
      G, Strategy::C2, SequentialDims::dims({0, 1}));
  expectParallelMatches(LP, 505);
}

TEST(ParallelExecTest, RandomProgramsMatchOnAllThreadCounts) {
  for (uint64_t Seed : {11u, 23u, 37u}) {
    GeneratorConfig Cfg;
    Cfg.Seed = Seed;
    Cfg.NumStmts = 8;
    Cfg.Extent = 7;
    Cfg.UseTwoRegions = Seed % 2 == 1;
    auto P = generateRandomProgram(Cfg);
    normalizeProgram(*P);
    ASDG G = ASDG::build(*P);
    for (Strategy S : {Strategy::Baseline, Strategy::C2, Strategy::C2F4}) {
      auto LP = scalarize::scalarizeWithStrategy(G, S);
      expectParallelMatches(LP, Seed ^ 0xabcd);
    }
  }
}

TEST(ParallelExecTest, ExecModeDispatchAndNames) {
  EXPECT_STREQ(getExecModeName(ExecMode::Sequential), "sequential");
  EXPECT_STREQ(getExecModeName(ExecMode::Parallel), "parallel");
  EXPECT_STREQ(getExecModeName(ExecMode::NativeJit), "jit");
  EXPECT_STREQ(getExecModeName(ExecMode::NativeJitSimd), "jit-simd");
  EXPECT_EQ(allExecModes().size(), 4u);
  ASSERT_TRUE(execModeNamed("jit").has_value());
  EXPECT_EQ(*execModeNamed("jit"), ExecMode::NativeJit);
  ASSERT_TRUE(execModeNamed("jit-simd").has_value());
  EXPECT_EQ(*execModeNamed("jit-simd"), ExecMode::NativeJitSimd);
  EXPECT_FALSE(execModeNamed("warp").has_value());

  auto P = tp::makeUserTempPair();
  ASDG G = ASDG::build(*P);
  auto LP = scalarize::scalarizeWithStrategy(G, Strategy::C2);
  RunResult Seq = runWithMode(LP, 9, ExecMode::Sequential);
  ParallelOptions Opts;
  Opts.NumThreads = 4;
  RunResult Par = runWithMode(LP, 9, ExecMode::Parallel, Opts);
  EXPECT_TRUE(resultsMatch(Seq, Par));
}

TEST(ParallelExecTest, ScheduleIsReportedAndCounted) {
  resetStatistics();
  auto P = tp::makeUserTempPair();
  ASDG G = ASDG::build(*P);
  auto LP = scalarize::scalarizeWithStrategy(G, Strategy::C2);
  ParallelSchedule Sched = planParallelism(LP);

  std::string Report = describeSchedule(LP, Sched);
  EXPECT_NE(Report.find("outer-parallel"), std::string::npos) << Report;
  EXPECT_NE(Report.find("no dependence carried"), std::string::npos) << Report;

  EXPECT_GE(getStatisticValue("parallel", "NestsOuterParallel"), 1u);
  ParallelOptions Opts;
  Opts.NumThreads = 2;
  runParallel(LP, 1, Opts, Sched);
  EXPECT_GE(getStatisticValue("parallel", "NumParallelRuns"), 1u);
}

} // namespace

//===- tests/VendorBenchmarkTest.cpp - Vendor policies on benchmarks ---------===//
//
// Runs the five modeled compilers over the six benchmark programs and
// checks the dominance structure the paper's section 5.1 implies: every
// vendor produces a valid partition, contraction capability is ordered
// PGI/IBM <= APR <= Cray <= ZPL, and the specific prose claims (no user
// contraction below Cray, compiler temporaries eliminated everywhere)
// hold on real program shapes, not just the probe fragments.
//
//===----------------------------------------------------------------------===//

#include "vendors/CompilerModel.h"

#include "benchprogs/Benchmarks.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace alf;
using namespace alf::benchprogs;
using namespace alf::ir;
using namespace alf::vendors;

namespace {

struct VendorCensus {
  std::string Vendor;
  unsigned Contracted = 0;
  unsigned CompilerContracted = 0;
  unsigned UserContracted = 0;
};

std::vector<VendorCensus> censusFor(const BenchmarkInfo &B) {
  std::vector<VendorCensus> Result;
  for (const VendorPolicy &Policy : allVendorPolicies()) {
    VendorRun Run = runVendorPipeline(B.Build(8), Policy);
    VendorCensus C;
    C.Vendor = Policy.Name;
    for (const std::string &Name : Run.ContractedNames) {
      ++C.Contracted;
      const auto *A = dyn_cast<ArraySymbol>(Run.Prog->findSymbol(Name));
      EXPECT_NE(A, nullptr) << Name;
      if (A && A->isCompilerTemp())
        ++C.CompilerContracted;
      else if (A)
        ++C.UserContracted;
    }
    EXPECT_TRUE(isWellFormed(*Run.Prog)) << Policy.Name;
    Result.push_back(std::move(C));
  }
  return Result;
}

class VendorBenchmark : public ::testing::TestWithParam<unsigned> {};

TEST_P(VendorBenchmark, CapabilityOrderingHolds) {
  const BenchmarkInfo &B = allBenchmarks()[GetParam()];
  std::vector<VendorCensus> C = censusFor(B);
  ASSERT_EQ(C.size(), 5u); // PGI, IBM, APR, Cray, ZPL
  // PGI == IBM (identical policies).
  EXPECT_EQ(C[0].Contracted, C[1].Contracted);
  // Monotone capability: each step contracts at least as much.
  EXPECT_LE(C[1].Contracted, C[2].Contracted) << B.Name;
  EXPECT_LE(C[2].Contracted, C[3].Contracted) << B.Name;
  EXPECT_LE(C[3].Contracted, C[4].Contracted) << B.Name;
}

TEST_P(VendorBenchmark, OnlyCrayAndZplContractUserArrays) {
  const BenchmarkInfo &B = allBenchmarks()[GetParam()];
  std::vector<VendorCensus> C = censusFor(B);
  EXPECT_EQ(C[0].UserContracted, 0u) << B.Name; // PGI
  EXPECT_EQ(C[1].UserContracted, 0u) << B.Name; // IBM
  EXPECT_EQ(C[2].UserContracted, 0u) << B.Name; // APR
}

TEST_P(VendorBenchmark, ZplContractsAllCompilerTemporaries) {
  // Figure 7: the "with contraction" column shows 0 compiler arrays on
  // every benchmark under the paper's technique.
  const BenchmarkInfo &B = allBenchmarks()[GetParam()];
  std::vector<VendorCensus> C = censusFor(B);
  EXPECT_EQ(C[4].CompilerContracted, B.PaperCompilerBefore) << B.Name;
}

INSTANTIATE_TEST_SUITE_P(AllSix, VendorBenchmark, ::testing::Range(0u, 6u),
                         [](const ::testing::TestParamInfo<unsigned> &Info) {
                           return allBenchmarks()[Info.param].Name;
                         });

TEST(VendorBenchmarkTest, ZplMatchesFigure7OnTomcatv) {
  // The ZPL policy's pipeline must contract exactly the Figure 7 set.
  const BenchmarkInfo &B = allBenchmarks()[3];
  VendorRun Run = runVendorPipeline(B.Build(8), allVendorPolicies()[4]);
  EXPECT_EQ(Run.ContractedNames.size(),
            B.PaperStaticBefore - B.PaperStaticAfter);
}

} // namespace

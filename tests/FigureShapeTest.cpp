//===- tests/FigureShapeTest.cpp - Paper result shapes as assertions ---------===//
//
// The runtime figures cannot be compared number-for-number (our machines
// are models), but the paper's *claims about shapes* can be asserted.
// This suite keeps the reproduction honest in CI: if a change to the
// optimizer or the machine model breaks a shape the paper reports, a
// test fails rather than a table drifting silently.
//
//===----------------------------------------------------------------------===//

#include "analysis/ASDG.h"
#include "benchprogs/Benchmarks.h"
#include "comm/CommInsertion.h"
#include "exec/PerfModel.h"
#include "ir/Normalize.h"
#include "scalarize/Scalarize.h"

#include <gtest/gtest.h>

#include <map>

using namespace alf;
using namespace alf::analysis;
using namespace alf::benchprogs;
using namespace alf::exec;
using namespace alf::ir;
using namespace alf::machine;
using namespace alf::xform;

namespace {

/// Percent improvement of every strategy over baseline for one benchmark
/// on one machine (weak scaling, given processor count).
std::map<Strategy, double> improvements(const BenchmarkInfo &B,
                                        const MachineDesc &M,
                                        unsigned Procs) {
  int64_t N = B.Rank == 1 ? 1024 : 16;
  auto P = B.Build(N);
  normalizeProgram(*P);
  ASDG G = ASDG::build(*P);
  ProcGrid Grid = ProcGrid::make(Procs, B.Rank);

  std::map<Strategy, double> Result;
  PerfStats Base;
  for (Strategy S : allStrategies()) {
    auto LP = scalarize::scalarizeWithStrategy(G, S);
    comm::insertLoopLevelComm(LP);
    PerfStats Stats = simulate(LP, M, Grid);
    if (S == Strategy::Baseline)
      Base = Stats;
    Result[S] = percentImprovement(Base, Stats);
  }
  return Result;
}

const BenchmarkInfo &benchNamed(const char *Name) {
  for (const BenchmarkInfo &B : allBenchmarks())
    if (B.Name == Name)
      return B;
  return allBenchmarks().front();
}

TEST(FigureShapeTest, C2DominatesEverywhere) {
  // "The predominant characteristic of the graphs is that c2 dominates
  // the other transformations."
  for (const MachineDesc &M : allMachines()) {
    for (const BenchmarkInfo &B : allBenchmarks()) {
      auto Imp = improvements(B, M, 4);
      for (Strategy S : {Strategy::F1, Strategy::C1, Strategy::F2,
                         Strategy::F3}) {
        EXPECT_GE(Imp[Strategy::C2] + 1e-9, Imp[S])
            << B.Name << " on " << M.Name << ": c2 under "
            << getStrategyName(S);
      }
      EXPECT_GT(Imp[Strategy::C2], 0.0) << B.Name << " on " << M.Name;
    }
  }
}

TEST(FigureShapeTest, SmallKernelsGainNothingFromC1) {
  // "The smaller benchmarks, such as Fibro, EP and Frac, require no
  // compiler arrays, so they do not benefit from f1 and c1."
  MachineDesc M = crayT3E();
  for (const char *Name : {"EP", "Frac", "Fibro"}) {
    auto Imp = improvements(benchNamed(Name), M, 1);
    EXPECT_NEAR(Imp[Strategy::F1], 0.0, 1e-6) << Name;
    EXPECT_NEAR(Imp[Strategy::C1], 0.0, 1e-6) << Name;
  }
}

TEST(FigureShapeTest, C1IsOnlyAFractionOfC2OnLargeApps) {
  // "contraction of only compiler arrays, c1, provides a substantive
  // performance enhancement ... but it is only a fraction of the
  // potential contraction benefit."
  MachineDesc M = crayT3E();
  for (const char *Name : {"SP", "Tomcatv", "Simple"}) {
    auto Imp = improvements(benchNamed(Name), M, 1);
    EXPECT_GT(Imp[Strategy::C1], 0.0) << Name;
    EXPECT_LT(Imp[Strategy::C1], 0.5 * Imp[Strategy::C2]) << Name;
  }
}

TEST(FigureShapeTest, LargestImprovementIsOnAFullyContractedKernel) {
  // "sometimes up to 400%": the biggest win comes from the kernels whose
  // arrays are all eliminated.
  MachineDesc M = crayT3E();
  double Best = 0.0;
  std::string BestName;
  for (const BenchmarkInfo &B : allBenchmarks()) {
    double C2 = improvements(B, M, 1)[Strategy::C2];
    if (C2 > Best) {
      Best = C2;
      BestName = B.Name;
    }
  }
  EXPECT_GE(Best, 300.0);
  EXPECT_TRUE(BestName == "EP" || BestName == "Frac") << BestName;
}

TEST(FigureShapeTest, FavoringCommunicationLosesOnTheBigApps) {
  // Section 5.5: "the communication optimizations disable a large number
  // of array contraction opportunities without producing comparable
  // communication benefits"; EP and Frac are unaffected.
  MachineDesc M = crayT3E();
  for (const char *Name : {"Simple", "Tomcatv", "SP"}) {
    const BenchmarkInfo &B = benchNamed(Name);
    int64_t N = 16;
    auto PF = B.Build(N);
    normalizeProgram(*PF);
    ASDG GF = ASDG::build(*PF);
    auto FF = scalarize::scalarizeWithStrategy(GF, Strategy::C2F3);
    comm::insertLoopLevelComm(FF);
    PerfStats FavorFusion = simulate(FF, M, ProcGrid::make(16, 2));

    auto PC = B.Build(N);
    normalizeProgram(*PC);
    comm::insertArrayLevelComm(*PC, /*Pipelined=*/true);
    ASDG GC = ASDG::build(*PC);
    auto FC = scalarize::scalarizeWithStrategy(GC, Strategy::C2F3);
    PerfStats FavorComm = simulate(FC, M, ProcGrid::make(16, 2));

    EXPECT_GT(FavorComm.totalNs(), FavorFusion.totalNs()) << Name;
  }
}

TEST(FigureShapeTest, ContractionBenefitIsCacheDriven) {
  // The mechanism: contraction must cut the memory traffic, not just the
  // instruction count. Compare served-by-memory counts on Tomcatv.
  MachineDesc M = crayT3E();
  const BenchmarkInfo &B = benchNamed("Tomcatv");
  auto P = B.Build(48);
  normalizeProgram(*P);
  ASDG G = ASDG::build(*P);
  auto Base = scalarize::scalarizeWithStrategy(G, Strategy::Baseline);
  auto C2 = scalarize::scalarizeWithStrategy(G, Strategy::C2);
  ProcGrid Grid = ProcGrid::make(1, 2);
  PerfStats SB = simulate(Base, M, Grid);
  PerfStats SC = simulate(C2, M, Grid);
  EXPECT_LT(2 * SC.MemRefs, SB.MemRefs)
      << "contraction should at least halve memory-served references";
  EXPECT_EQ(SB.Flops, SC.Flops) << "contraction adds no arithmetic";
}

} // namespace

//===- tests/RuntimeEngineTest.cpp - Deferred-evaluation engine tests -------===//
//
// The runtime engine's contract: recording is free (no execution until a
// flush trigger), handle liveness decides which traced arrays contract
// away, the structural trace cache makes repeated trace shapes pay
// analysis and kernel compilation once (constants and buffer contents do
// not participate in the key), and every execution mode and flush policy
// produces identical values.
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"

#include "exec/NativeJit.h"
#include "obs/Obs.h"
#include "support/Statistic.h"

#include <filesystem>
#include <gtest/gtest.h>
#include <unistd.h>

using namespace alf;
using namespace alf::runtime;

namespace {

ir::Region r1(int64_t Lo, int64_t Hi) { return ir::Region({Lo}, {Hi}); }

ir::Region r2(int64_t Lo0, int64_t Hi0, int64_t Lo1, int64_t Hi1) {
  return ir::Region({Lo0, Lo1}, {Hi0, Hi1});
}

/// A 1-D input over [0..N-1] holding value i at index i.
Array rampInput(Engine &E, int64_t N, const std::string &Name = "A") {
  Array A = E.input(Name, r1(0, N - 1));
  for (int64_t I = 0; I < N; ++I)
    A.set({I}, static_cast<double>(I));
  return A;
}

TEST(RuntimeEngineTest, RecordingIsLazyAndObservationFlushes) {
  Engine E;
  Array A = rampInput(E, 6);
  Array B = E.compute(r1(1, 4), (shift(A, {-1}) + shift(A, {1})) * Ex(0.5));

  EXPECT_TRUE(B.deferred());
  EXPECT_EQ(E.pending(), 1u);
  EXPECT_EQ(E.stats().Flushes, 0u);

  EXPECT_DOUBLE_EQ(B.get({2}), (1.0 + 3.0) * 0.5);
  EXPECT_FALSE(B.deferred());
  EXPECT_EQ(E.pending(), 0u);
  EXPECT_EQ(E.stats().Flushes, 1u);
  EXPECT_EQ(E.lastFlush().Trigger, FlushTrigger::Observe);
  for (int64_t I = 1; I <= 4; ++I)
    EXPECT_DOUBLE_EQ(B.get({I}), static_cast<double>(I));
}

TEST(RuntimeEngineTest, DroppedHandlesContractHeldHandlesSurvive) {
  Engine E;
  Array A = rampInput(E, 10);
  Array C;
  {
    Array T = E.compute(r1(1, 8), Ex(A) * Ex(2.0));
    C = E.compute(r1(1, 8), Ex(T) + Ex(1.0));
  } // T dropped: dead at flush, a contraction candidate
  E.flush();
  EXPECT_EQ(E.lastFlush().Trigger, FlushTrigger::Explicit);
  EXPECT_GE(E.lastFlush().Contracted, 1u);
  for (int64_t I = 1; I <= 8; ++I)
    EXPECT_DOUBLE_EQ(C.get({I}), 2.0 * static_cast<double>(I) + 1.0);

  // Same chain with the intermediate handle held: it is live-out, cannot
  // contract, and its values are observable.
  Array T2 = E.compute(r1(1, 8), Ex(A) * Ex(2.0));
  Array C2 = E.compute(r1(1, 8), Ex(T2) + Ex(1.0));
  E.flush();
  EXPECT_EQ(E.lastFlush().Contracted, 0u);
  EXPECT_DOUBLE_EQ(T2.get({3}), 6.0);
  EXPECT_DOUBLE_EQ(C2.get({3}), 7.0);
}

TEST(RuntimeEngineTest, TraceCacheHitsOnSameStructureDifferentConstants) {
  Engine E;
  Array A = rampInput(E, 10);

  Array B1 = E.compute(r1(1, 8), Ex(A) * Ex(3.0));
  E.flush();
  EXPECT_FALSE(E.lastFlush().CacheHit);

  Array B2 = E.compute(r1(1, 8), Ex(A) * Ex(5.0));
  E.flush();
  EXPECT_TRUE(E.lastFlush().CacheHit);
  for (int64_t I = 1; I <= 8; ++I) {
    EXPECT_DOUBLE_EQ(B1.get({I}), 3.0 * static_cast<double>(I));
    EXPECT_DOUBLE_EQ(B2.get({I}), 5.0 * static_cast<double>(I));
  }

  // A different offset is a different structure: full analysis again.
  Array B3 = E.compute(r1(1, 8), shift(A, {1}) * Ex(3.0));
  E.flush();
  EXPECT_FALSE(E.lastFlush().CacheHit);
  EXPECT_DOUBLE_EQ(B3.get({4}), 15.0);
  EXPECT_EQ(E.stats().CacheHits, 1u);
  EXPECT_EQ(E.stats().CacheMisses, 2u);
}

TEST(RuntimeEngineTest, TraceLengthCapAutoFlushes) {
  EngineOptions O;
  O.MaxTraceLen = 2;
  Engine E(O);
  Array A = rampInput(E, 10);

  Array B = E.compute(r1(1, 8), Ex(A) + Ex(1.0));
  EXPECT_EQ(E.pending(), 1u);
  Array C = E.compute(r1(1, 8), Ex(B) * Ex(2.0));
  EXPECT_EQ(E.pending(), 0u); // cap reached: flushed inline
  EXPECT_EQ(E.lastFlush().Trigger, FlushTrigger::Cap);
  EXPECT_EQ(E.lastFlush().TraceLen, 2u);
  EXPECT_FALSE(B.deferred());
  EXPECT_DOUBLE_EQ(C.get({5}), 12.0);
}

TEST(RuntimeEngineTest, DirectMutationFlushesFirst) {
  Engine E;
  Array A = rampInput(E, 6);
  Array B = E.compute(r1(1, 4), Ex(A) * Ex(10.0));
  A.set({2}, 100.0); // must not retroactively change the traced B
  EXPECT_EQ(E.lastFlush().Trigger, FlushTrigger::Mutate);
  EXPECT_DOUBLE_EQ(B.get({2}), 20.0);
  Array C = E.compute(r1(1, 4), Ex(A) * Ex(10.0));
  EXPECT_DOUBLE_EQ(C.get({2}), 1000.0);
}

TEST(RuntimeEngineTest, ReductionsDeferAndResolve) {
  Engine E;
  Array A = rampInput(E, 6); // 0..5
  Scalar Sum = E.reduce(RedOp::Sum, r1(0, 5), Ex(A));
  Scalar Mx = E.reduce(RedOp::Max, r1(0, 5), Ex(A));
  EXPECT_TRUE(Sum.deferred());
  EXPECT_EQ(E.pending(), 2u);
  EXPECT_DOUBLE_EQ(Sum.value(), 15.0);
  EXPECT_FALSE(Mx.deferred()); // same flush resolved both
  EXPECT_DOUBLE_EQ(Mx.value(), 5.0);
  EXPECT_EQ(E.stats().Flushes, 1u);
}

TEST(RuntimeEngineTest, PendingScalarUsableInLaterStatements) {
  Engine E;
  Array A = rampInput(E, 5); // 0..4, sum 10
  Scalar Sum = E.reduce(RedOp::Sum, r1(0, 4), Ex(A));
  Array B = E.compute(r1(0, 4), Ex(A) * Ex(Sum));
  E.flush();
  EXPECT_EQ(E.stats().Flushes, 1u);
  for (int64_t I = 0; I <= 4; ++I)
    EXPECT_DOUBLE_EQ(B.get({I}), static_cast<double>(I) * 10.0);
}

TEST(RuntimeEngineTest, ZeroHaloSemantics) {
  Engine E;
  Array A = rampInput(E, 5); // domain [0..4]
  Array B = E.compute(r1(0, 4), shift(A, {1}) + Ex(0.0));
  // B[4] reads A[5], outside A's domain: zero halo.
  EXPECT_DOUBLE_EQ(B.get({4}), 0.0);
  EXPECT_DOUBLE_EQ(B.get({3}), 4.0);
  // Reads outside B's own domain are zero too.
  EXPECT_DOUBLE_EQ(B.get({100}), 0.0);
}

TEST(RuntimeEngineTest, InPlaceUpdateHasJacobiSemantics) {
  Engine E;
  Array A = rampInput(E, 10);
  // [1..8] A := (A@-1 + A@1)/2 — self-referencing, so normalization
  // splits it through a compiler temporary: every read sees the old A.
  E.update(A, ir::Offset({0}), r1(1, 8),
           (shift(A, {-1}) + shift(A, {1})) * Ex(0.5));
  E.flush();
  EXPECT_DOUBLE_EQ(A.get({0}), 0.0); // outside the update region: kept
  EXPECT_DOUBLE_EQ(A.get({9}), 9.0);
  for (int64_t I = 1; I <= 8; ++I)
    EXPECT_DOUBLE_EQ(A.get({I}), static_cast<double>(I)); // ramp average
}

TEST(RuntimeEngineTest, Rank2Stencil) {
  Engine E;
  Array A = E.input("A", r2(0, 5, 0, 5));
  for (int64_t I = 0; I <= 5; ++I)
    for (int64_t J = 0; J <= 5; ++J)
      A.set({I, J}, static_cast<double>(I * 10 + J));
  Array B = E.compute(r2(1, 4, 1, 4),
                      (shift(A, {-1, 0}) + shift(A, {1, 0}) +
                       shift(A, {0, -1}) + shift(A, {0, 1})) *
                          Ex(0.25));
  EXPECT_DOUBLE_EQ(B.get({2, 3}), (13.0 + 33.0 + 22.0 + 24.0) * 0.25);
  std::vector<double> Vals = B.values();
  ASSERT_EQ(Vals.size(), 16u);
  EXPECT_DOUBLE_EQ(Vals[0], B.get({1, 1}));
  EXPECT_DOUBLE_EQ(Vals[15], B.get({4, 4}));
}

/// The same three-statement chain under every flush policy must produce
/// bit-identical results: per-element arithmetic is unchanged by where
/// the trace is cut, what fuses, and what contracts.
TEST(RuntimeEngineTest, FlushPolicyDoesNotChangeValues) {
  auto RunChain = [](unsigned MaxTraceLen) {
    EngineOptions O;
    O.MaxTraceLen = MaxTraceLen;
    Engine E(O);
    Array A = rampInput(E, 12);
    Array B = E.compute(r1(1, 10), (shift(A, {-1}) + shift(A, {1})) * Ex(0.5));
    Array C = E.compute(r1(1, 10), Ex(B) * Ex(2.0) - Ex(A));
    Array D = E.compute(r1(2, 9), shift(C, {-1}) + shift(C, {1}));
    return D.values();
  };
  std::vector<double> Batched = RunChain(64);
  std::vector<double> Single = RunChain(1);
  ASSERT_EQ(Batched.size(), Single.size());
  for (size_t I = 0; I < Batched.size(); ++I)
    EXPECT_EQ(Batched[I], Single[I]) << "element " << I;
}

TEST(RuntimeEngineTest, ParallelModeMatchesSequential) {
  auto RunChain = [](xform::ExecMode Mode) {
    EngineOptions O;
    O.Mode = Mode;
    Engine E(O);
    Array A = rampInput(E, 32);
    Array B = E.compute(r1(1, 30), (shift(A, {-1}) + shift(A, {1})) * Ex(0.5));
    Array C = E.compute(r1(1, 30), Ex(B) * Ex(B) + Ex(1.0));
    return C.values();
  };
  std::vector<double> Seq = RunChain(xform::ExecMode::Sequential);
  std::vector<double> Par = RunChain(xform::ExecMode::Parallel);
  ASSERT_EQ(Seq.size(), Par.size());
  for (size_t I = 0; I < Seq.size(); ++I)
    EXPECT_EQ(Seq[I], Par[I]) << "element " << I;
}

TEST(RuntimeEngineTest, EngineDestructionMaterializesSurvivors) {
  Array B;
  {
    Engine E;
    Array A = rampInput(E, 6);
    B = E.compute(r1(1, 4), Ex(A) + Ex(100.0));
    EXPECT_TRUE(B.deferred());
  }
  EXPECT_FALSE(B.deferred());
  EXPECT_DOUBLE_EQ(B.get({3}), 103.0);
}

TEST(RuntimeEngineTest, WarmJitFlushesCompileNothing) {
  if (!exec::JitEngine::compilerAvailable())
    GTEST_SKIP() << "no usable system C compiler";
  std::string CacheDir =
      (std::filesystem::temp_directory_path() /
       ("alf-rt-jit-test-" + std::to_string(getpid())))
          .string();
  std::filesystem::remove_all(CacheDir);

  EngineOptions O;
  O.Mode = xform::ExecMode::NativeJit;
  O.Jit.CacheDir = CacheDir;
  Engine E(O);
  Array A = rampInput(E, 16);
  for (int Iter = 0; Iter < 3; ++Iter) {
    Array B =
        E.compute(r1(1, 14), (shift(A, {-1}) + shift(A, {1})) * Ex(0.5));
    E.flush();
    ASSERT_TRUE(E.lastFlush().UsedJit);
    if (Iter == 0) {
      EXPECT_FALSE(E.lastFlush().CacheHit);
      EXPECT_TRUE(E.lastFlush().Compiled);
    } else {
      // Structurally identical trace: served by the trace cache, the
      // loaded kernel reruns, the compiler is never invoked.
      EXPECT_TRUE(E.lastFlush().CacheHit);
      EXPECT_FALSE(E.lastFlush().Compiled);
    }
    EXPECT_DOUBLE_EQ(B.get({7}), 7.0);
  }
  EXPECT_EQ(E.stats().KernelCompiles, 1u);

  std::error_code EC;
  std::filesystem::remove_all(CacheDir, EC);
}

TEST(RuntimeEngineTest, FlushNeverTruncatesMaterializedArrays) {
  Engine E;
  Array A = rampInput(E, 6);
  // The trace only touches A over [2..3]; A's data outside that footprint
  // must survive the flush untouched.
  Array B = E.compute(r1(2, 3), Ex(A) * Ex(2.0));
  E.flush();
  EXPECT_DOUBLE_EQ(A.get({0}), 0.0);
  EXPECT_DOUBLE_EQ(A.get({5}), 5.0);
  EXPECT_DOUBLE_EQ(B.get({3}), 6.0);

  // An in-place update of a sub-region merges: new values inside, prior
  // values outside.
  E.update(A, ir::Offset({0}), r1(4, 5), Ex(A) * Ex(2.0));
  E.flush();
  EXPECT_DOUBLE_EQ(A.get({1}), 1.0);
  EXPECT_DOUBLE_EQ(A.get({4}), 8.0);
  EXPECT_DOUBLE_EQ(A.get({5}), 10.0);
  EXPECT_DOUBLE_EQ(A.get({0}), 0.0);
}

TEST(RuntimeEngineTest, StatisticsAccumulate) {
  uint64_t Flushes0 = getStatisticValue("runtime", "NumRuntimeFlushes");
  uint64_t Stmts0 = getStatisticValue("runtime", "NumRuntimeStmts");
  Engine E;
  Array A = rampInput(E, 6);
  Array B = E.compute(r1(1, 4), Ex(A) + Ex(1.0));
  E.flush();
  (void)B;
  EXPECT_EQ(getStatisticValue("runtime", "NumRuntimeFlushes"), Flushes0 + 1);
  EXPECT_EQ(getStatisticValue("runtime", "NumRuntimeStmts"), Stmts0 + 1);
  EXPECT_EQ(E.stats().Flushes, 1u);
  EXPECT_EQ(E.stats().StmtsRecorded, 1u);
  EXPECT_EQ(E.stats().CacheHits + E.stats().CacheMisses, E.stats().Flushes);
}

// The obs counters for record/flush/memoize events must agree with the
// "runtime" statistics group over the same window: one miss on the first
// trace shape, one memoized hit on the structurally identical second one.
TEST(RuntimeEngineTest, ObsCountersMatchRuntimeStatistics) {
  obs::ScopedLevel Lvl(obs::ObsLevel::Counters);
  obs::reset();
  uint64_t Flushes0 = getStatisticValue("runtime", "NumRuntimeFlushes");
  uint64_t Stmts0 = getStatisticValue("runtime", "NumRuntimeStmts");
  uint64_t Hits0 = getStatisticValue("runtime", "NumRuntimeCacheHits");
  uint64_t Misses0 = getStatisticValue("runtime", "NumRuntimeCacheMisses");

  Engine E;
  Array A = rampInput(E, 8);
  Array B = E.compute(r1(1, 6), Ex(A) * Ex(2.0));
  E.flush();
  Array C = E.compute(r1(1, 6), Ex(A) * Ex(3.0));
  E.flush();
  (void)B;
  (void)C;

  uint64_t FlushDelta =
      getStatisticValue("runtime", "NumRuntimeFlushes") - Flushes0;
  uint64_t StmtDelta = getStatisticValue("runtime", "NumRuntimeStmts") - Stmts0;
  uint64_t HitDelta =
      getStatisticValue("runtime", "NumRuntimeCacheHits") - Hits0;
  uint64_t MissDelta =
      getStatisticValue("runtime", "NumRuntimeCacheMisses") - Misses0;
  ASSERT_EQ(FlushDelta, 2u);
  ASSERT_EQ(StmtDelta, 2u);
  ASSERT_EQ(MissDelta, 1u);
  ASSERT_EQ(HitDelta, 1u);

  auto Flush = obs::metricsFor("runtime.flush");
  ASSERT_TRUE(Flush.has_value());
  EXPECT_EQ(Flush->Count, FlushDelta);
  auto Record = obs::metricsFor("runtime.record");
  ASSERT_TRUE(Record.has_value());
  EXPECT_EQ(Record->Count, StmtDelta);
  auto Miss = obs::metricsFor("runtime.cache.miss");
  ASSERT_TRUE(Miss.has_value());
  EXPECT_EQ(Miss->Count, MissDelta);
  auto Hit = obs::metricsFor("runtime.cache.hit");
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(Hit->Count, HitDelta);
  // The trace-cache entry is built exactly once per miss.
  auto Build = obs::metricsFor("runtime.build");
  ASSERT_TRUE(Build.has_value());
  EXPECT_EQ(Build->Count, MissDelta);

  EXPECT_EQ(E.stats().Flushes, FlushDelta);
  EXPECT_EQ(E.stats().StmtsRecorded, StmtDelta);
  EXPECT_EQ(E.stats().CacheHits, HitDelta);
  EXPECT_EQ(E.stats().CacheMisses, MissDelta);
  obs::reset();
}

} // namespace

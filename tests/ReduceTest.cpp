//===- tests/ReduceTest.cpp - Reduction statement tests ---------------------===//

#include "analysis/ASDG.h"
#include "exec/Interpreter.h"
#include "ir/Verifier.h"
#include "scalarize/Scalarize.h"
#include "xform/Strategy.h"

#include <gtest/gtest.h>

using namespace alf;
using namespace alf::analysis;
using namespace alf::exec;
using namespace alf::ir;
using namespace alf::lir;
using namespace alf::xform;

namespace {

TEST(ReduceTest, PrintingAndAccesses) {
  Program P("r");
  const Region *R = P.regionFromExtents({8});
  ArraySymbol *A = P.makeArray("A", 1);
  ScalarSymbol *S = P.makeScalar("total");
  ReduceStmt *RS =
      P.reduce(R, S, ReduceStmt::ReduceOpKind::Sum, mul(aref(A), aref(A)));
  EXPECT_EQ(RS->str(), "[1..8] total := +<< (A * A);");
  std::vector<Access> Accs;
  RS->getAccesses(Accs);
  ASSERT_EQ(Accs.size(), 3u);
  EXPECT_EQ(Accs[0].Sym, S);
  EXPECT_TRUE(Accs[0].IsWrite);
  EXPECT_FALSE(Accs[1].IsWrite);
  EXPECT_TRUE(isWellFormed(P));
}

TEST(ReduceTest, IdentityAndCombine) {
  using K = ReduceStmt::ReduceOpKind;
  EXPECT_DOUBLE_EQ(ReduceStmt::identity(K::Sum), 0.0);
  EXPECT_GT(ReduceStmt::identity(K::Min), 1e300);
  EXPECT_LT(ReduceStmt::identity(K::Max), -1e300);
  EXPECT_DOUBLE_EQ(ReduceStmt::combine(K::Sum, 2, 3), 5);
  EXPECT_DOUBLE_EQ(ReduceStmt::combine(K::Min, 2, 3), 2);
  EXPECT_DOUBLE_EQ(ReduceStmt::combine(K::Max, 2, 3), 3);
}

TEST(ReduceTest, FusesWithProducerAndContractsInput) {
  // The EP pattern: T := f(...); total := +<< T. Fusing the reduction
  // with the producer contracts T away entirely.
  Program P("ep-ish");
  const Region *R = P.regionFromExtents({16});
  ArraySymbol *T = P.makeUserTemp("T", 1);
  ScalarSymbol *S = P.makeScalar("total");
  P.assign(R, T, add(cst(1.0), cst(2.0)));
  P.reduce(R, S, ReduceStmt::ReduceOpKind::Sum, aref(T));
  ASDG G = ASDG::build(P);
  StrategyResult SR = applyStrategy(G, Strategy::C2);
  EXPECT_EQ(SR.Partition.numClusters(), 1u);
  ASSERT_EQ(SR.Contracted.size(), 1u);
  EXPECT_EQ(SR.Contracted[0]->getName(), "T");
}

TEST(ReduceTest, InterpreterComputesSum) {
  Program P("sum");
  const Region *R = P.regionFromExtents({10});
  ArraySymbol *T = P.makeUserTemp("T", 1);
  ScalarSymbol *S = P.makeScalar("total");
  P.assign(R, T, cst(2.5));
  P.reduce(R, S, ReduceStmt::ReduceOpKind::Sum, aref(T));
  ASDG G = ASDG::build(P);
  auto LP = scalarize::scalarizeWithStrategy(G, Strategy::Baseline);
  RunResult Res = run(LP, 1);
  EXPECT_DOUBLE_EQ(Res.ScalarsOut.at("total"), 25.0);
}

TEST(ReduceTest, MinMaxReductions) {
  Program P("minmax");
  const Region *R = P.regionFromExtents({8});
  ArraySymbol *A = P.makeArray("A", 1);
  ScalarSymbol *Lo = P.makeScalar("lo");
  ScalarSymbol *Hi = P.makeScalar("hi");
  P.reduce(R, Lo, ReduceStmt::ReduceOpKind::Min, aref(A));
  P.reduce(R, Hi, ReduceStmt::ReduceOpKind::Max, aref(A));
  ASDG G = ASDG::build(P);
  auto LP = scalarize::scalarizeWithStrategy(G, Strategy::Baseline);
  RunResult Res = run(LP, 5);
  const auto &AData = Res.LiveOut.at("A");
  double Min = 1e300, Max = -1e300;
  for (double V : AData) {
    Min = std::min(Min, V);
    Max = std::max(Max, V);
  }
  EXPECT_DOUBLE_EQ(Res.ScalarsOut.at("lo"), Min);
  EXPECT_DOUBLE_EQ(Res.ScalarsOut.at("hi"), Max);
}

TEST(ReduceTest, ContractionPreservesReductionValue) {
  Program P("chain");
  const Region *R = P.regionFromExtents({32});
  ArraySymbol *A = P.makeArray("A", 1);
  ArraySymbol *T1 = P.makeUserTemp("T1", 1);
  ArraySymbol *T2 = P.makeUserTemp("T2", 1);
  ScalarSymbol *S = P.makeScalar("total");
  P.assign(R, T1, mul(aref(A), aref(A)));
  P.assign(R, T2, add(aref(T1), cst(1.0)));
  P.reduce(R, S, ReduceStmt::ReduceOpKind::Sum, aref(T2));
  ASDG G = ASDG::build(P);
  auto Base = scalarize::scalarizeWithStrategy(G, Strategy::Baseline);
  auto Opt = scalarize::scalarizeWithStrategy(G, Strategy::C2);
  std::string Why;
  EXPECT_TRUE(resultsMatch(run(Base, 9), run(Opt, 9), 1e-9, &Why)) << Why;
  // Both temps contracted: only A allocated.
  EXPECT_EQ(Opt.allocatedArrays().size(), 1u);
}

TEST(ReduceTest, ScalarInitEmittedInPrinter) {
  Program P("print");
  const Region *R = P.regionFromExtents({4});
  ArraySymbol *A = P.makeArray("A", 1);
  ScalarSymbol *S = P.makeScalar("acc");
  P.reduce(R, S, ReduceStmt::ReduceOpKind::Sum, aref(A));
  ASDG G = ASDG::build(P);
  auto LP = scalarize::scalarizeWithStrategy(G, Strategy::Baseline);
  std::string Text = LP.str();
  EXPECT_NE(Text.find("acc = 0;"), std::string::npos);
  EXPECT_NE(Text.find("acc += A[i1];"), std::string::npos);
}

TEST(ReduceTest, UpwardExposedReduceBlocksContraction) {
  // T is reduced before it is written: not contractible.
  Program P("upward");
  const Region *R = P.regionFromExtents({8});
  ArraySymbol *A = P.makeArray("A", 1);
  ArrayOpts Opts;
  Opts.LiveOut = false;
  Opts.LiveIn = true;
  ArraySymbol *T = P.makeArray("T", 1, Opts);
  ScalarSymbol *S = P.makeScalar("total");
  P.reduce(R, S, ReduceStmt::ReduceOpKind::Sum, aref(T));
  P.assign(R, T, aref(A));
  ASDG G = ASDG::build(P);
  StrategyResult SR = applyStrategy(G, Strategy::C2);
  EXPECT_TRUE(SR.Contracted.empty());
}

} // namespace

//===- tests/PartialContractionTest.cpp - Lower-dimensional contraction ------===//

#include "xform/PartialContraction.h"

#include "analysis/ASDG.h"
#include "exec/Interpreter.h"
#include "exec/PerfModel.h"
#include "ir/Generator.h"
#include "ir/Normalize.h"
#include "scalarize/Scalarize.h"
#include "xform/Strategy.h"

#include <gtest/gtest.h>

using namespace alf;
using namespace alf::analysis;
using namespace alf::exec;
using namespace alf::ir;
using namespace alf::xform;

namespace {

/// S0: T := A; S1: B := T@Off — a producer/consumer pair with a carried
/// flow dependence (not fusible under the strict Definition 5).
std::unique_ptr<Program> makeCarriedPair(Offset ReadOff, int64_t N = 8) {
  auto P = std::make_unique<Program>("carried");
  const Region *R = P->regionFromExtents({N, N});
  ArraySymbol *A = P->makeArray("A", 2);
  ArraySymbol *T = P->makeUserTemp("T", 2);
  ArraySymbol *B = P->makeArray("B", 2);
  P->assign(R, T, add(aref(A), cst(1.0)));
  P->assign(R, B, add(aref(T, std::move(ReadOff)), aref(T)));
  return P;
}

TEST(SequentialDimsTest, Queries) {
  SequentialDims None = SequentialDims::none();
  EXPECT_FALSE(None.isSequential(0));
  EXPECT_FALSE(None.isSequential(5));
  SequentialDims D1 = SequentialDims::dims({1});
  EXPECT_FALSE(D1.isSequential(0));
  EXPECT_TRUE(D1.isSequential(1));
  EXPECT_FALSE(D1.isSequential(2));
}

TEST(RelaxedLegalityTest, SequentialFlowDistanceAllowed) {
  auto P = makeCarriedPair({-1, 0}); // flow UDV (1,0): carried in dim 0
  ASDG G = ASDG::build(*P);
  FusionPartition FP = FusionPartition::trivial(G);
  // Strict Definition 5 refuses (loop-carried flow).
  EXPECT_FALSE(isLegalFusion(FP, {0, 1}));
  // Relaxed along dim 0: legal.
  EXPECT_TRUE(isLegalFusionRelaxed(FP, {0, 1}, SequentialDims::dims({0})));
  // Relaxed along dim 1 only: still illegal (distance is in dim 0).
  EXPECT_FALSE(isLegalFusionRelaxed(FP, {0, 1}, SequentialDims::dims({1})));
}

TEST(RelaxedLegalityTest, PartiallyContractible) {
  auto P = makeCarriedPair({-1, 0});
  ASDG G = ASDG::build(*P);
  FusionPartition FP = FusionPartition::trivial(G);
  const auto *T = cast<ArraySymbol>(P->findSymbol("T"));
  EXPECT_FALSE(isContractible(FP, {0, 1}, T));
  EXPECT_TRUE(
      isPartiallyContractible(FP, {0, 1}, T, SequentialDims::dims({0})));
  EXPECT_FALSE(
      isPartiallyContractible(FP, {0, 1}, T, SequentialDims::dims({1})));
}

TEST(PartialPlanTest, OutermostCarryGivesRollingWindow) {
  // Dependence carried by the outermost loop: T becomes a 2-plane
  // rolling buffer (w+1 = 2) with full rows.
  auto P = makeCarriedPair({-1, 0});
  ASDG G = ASDG::build(*P);
  FusionPartition FP = FusionPartition::trivial(G);
  SequentialDims Seq = SequentialDims::dims({0});
  EXPECT_EQ(fuseForPartialContraction(FP, Seq), 1u);
  auto Plans = planPartialContraction(FP, Seq, {});
  ASSERT_EQ(Plans.size(), 1u);
  EXPECT_EQ(Plans[0].Array->getName(), "T");
  EXPECT_EQ(Plans[0].BufferExtents, (std::vector<int64_t>{2, 8}));
  EXPECT_TRUE(Plans[0].isReduced(0));
  EXPECT_FALSE(Plans[0].isReduced(1));
  // The footprint includes the halo row read at @(-1,0): 9 x 8 elements.
  EXPECT_EQ(Plans[0].origBytes(), 9u * 8u * 8u);
  EXPECT_EQ(Plans[0].bufferBytes(), 2u * 8u * 8u);
  // Buffer bounds: modular dim is [0..1], the full dim keeps footprint.
  Region BR = Plans[0].bufferRegion();
  EXPECT_EQ(BR.lo(0), 0);
  EXPECT_EQ(BR.hi(0), 1);
  EXPECT_EQ(BR.extent(1), 8);
}

TEST(PartialPlanTest, InnerCarryWithHaloReadsKeepsFullCarryDim) {
  // Dependence carried by the inner loop, and the consumer reads outside
  // the written range (column 0): the carry dimension must keep its full
  // extent; the outer dimension still contracts to one row.
  auto P = makeCarriedPair({0, -1});
  ASDG G = ASDG::build(*P);
  FusionPartition FP = FusionPartition::trivial(G);
  SequentialDims Seq = SequentialDims::dims({1});
  EXPECT_EQ(fuseForPartialContraction(FP, Seq), 1u);
  auto Plans = planPartialContraction(FP, Seq, {});
  ASSERT_EQ(Plans.size(), 1u);
  EXPECT_EQ(Plans[0].BufferExtents, (std::vector<int64_t>{1, 9}));
  EXPECT_TRUE(Plans[0].isReduced(0));
}

TEST(PartialPlanTest, WrapMapsCoordinatesModulo) {
  PartialPlan Plan;
  Plan.OrigLo = {1, 0};
  Plan.FullExtents = {8, 8};
  Plan.BufferExtents = {2, 8};
  EXPECT_EQ(Plan.wrap(0, 1), 0);
  EXPECT_EQ(Plan.wrap(0, 2), 1);
  EXPECT_EQ(Plan.wrap(0, 3), 0);
  EXPECT_EQ(Plan.wrap(0, 0), 1);  // halo below lo wraps positively
  EXPECT_EQ(Plan.wrap(1, 5), 5);  // unreduced dim: identity
}

TEST(PartialContractionTest, InterpreterEquivalenceOuterCarry) {
  auto P = makeCarriedPair({-1, 0}, 10);
  ASDG G = ASDG::build(*P);
  auto Base = scalarize::scalarizeWithStrategy(G, Strategy::Baseline);
  auto Partial = scalarize::scalarizeWithPartialContraction(
      G, Strategy::C2, SequentialDims::dims({0}));
  EXPECT_EQ(Partial.partialPlans().size(), 1u);
  std::string Why;
  EXPECT_TRUE(resultsMatch(run(Base, 77), run(Partial, 77), 0.0, &Why))
      << Why;
}

TEST(PartialContractionTest, InterpreterEquivalenceInnerCarry) {
  auto P = makeCarriedPair({0, -1}, 10);
  ASDG G = ASDG::build(*P);
  auto Base = scalarize::scalarizeWithStrategy(G, Strategy::Baseline);
  auto Partial = scalarize::scalarizeWithPartialContraction(
      G, Strategy::C2, SequentialDims::dims({1}));
  EXPECT_EQ(Partial.partialPlans().size(), 1u);
  std::string Why;
  EXPECT_TRUE(resultsMatch(run(Base, 78), run(Partial, 78), 0.0, &Why))
      << Why;
}

TEST(PartialContractionTest, ForwardSubstitutionSweep) {
  // SP-style: z produced, consumed at an offset by the next statement,
  // plus the full contraction of an ordinary chain in the same program.
  Program P("sweep");
  const Region *R = P.regionFromExtents({12, 12});
  ArraySymbol *U = P.makeArray("U", 2);
  ArraySymbol *V = P.makeArray("V", 2);
  ArraySymbol *Z = P.makeUserTemp("Z", 2);
  ArraySymbol *T = P.makeUserTemp("T", 2);
  P.assign(R, Z, add(aref(U), cst(0.5)));
  P.assign(R, T, mul(aref(Z, {-2, 0}), cst(0.25))); // distance 2 in dim 0
  P.assign(R, V, add(aref(T), aref(U)));
  ASDG G = ASDG::build(P);
  auto Base = scalarize::scalarizeWithStrategy(G, Strategy::Baseline);
  auto Partial = scalarize::scalarizeWithPartialContraction(
      G, Strategy::C2, SequentialDims::dims({0}));
  // T contracts fully; Z becomes a 3-plane rolling buffer.
  const auto *ZSym = cast<ArraySymbol>(P.findSymbol("Z"));
  const auto *TSym = cast<ArraySymbol>(P.findSymbol("T"));
  EXPECT_TRUE(Partial.isContracted(TSym));
  const xform::PartialPlan *Plan = Partial.partialPlanFor(ZSym);
  ASSERT_NE(Plan, nullptr);
  EXPECT_EQ(Plan->BufferExtents[0], 3);
  std::string Why;
  EXPECT_TRUE(resultsMatch(run(Base, 99), run(Partial, 99), 0.0, &Why))
      << Why;
}

TEST(PartialContractionTest, NoSequentialDimsMeansNoPlans) {
  auto P = makeCarriedPair({-1, 0});
  ASDG G = ASDG::build(*P);
  auto LP = scalarize::scalarizeWithPartialContraction(
      G, Strategy::C2, SequentialDims::none());
  EXPECT_TRUE(LP.partialPlans().empty());
}

TEST(PartialContractionTest, ReducesSimulatedFootprintTraffic) {
  auto P = makeCarriedPair({-1, 0}, 64);
  ASDG G = ASDG::build(*P);
  auto Full = scalarize::scalarizeWithStrategy(G, Strategy::C2);
  auto Partial = scalarize::scalarizeWithPartialContraction(
      G, Strategy::C2, SequentialDims::dims({0}));
  machine::MachineDesc M = machine::crayT3E();
  machine::ProcGrid Grid = machine::ProcGrid::make(1, 2);
  PerfStats SFull = simulate(Full, M, Grid);
  PerfStats SPartial = simulate(Partial, M, Grid);
  // The rolling buffer stays cache-resident: fewer L1 misses.
  EXPECT_LT(SPartial.Refs - SPartial.L1Hits, SFull.Refs - SFull.L1Hits);
}

/// Property sweep: partial contraction with every dimension sequential
/// must preserve semantics on random programs (the strongest stress on
/// rolling-buffer safety).
class PartialEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PartialEquivalence, RandomProgramsPreserveSemantics) {
  GeneratorConfig Cfg;
  Cfg.Seed = GetParam();
  Cfg.NumStmts = 5 + static_cast<unsigned>(GetParam() % 8);
  Cfg.Extent = 7;
  Cfg.MaxOffset = 1 + static_cast<unsigned>(GetParam() % 2);
  auto P = generateRandomProgram(Cfg);
  normalizeProgram(*P);
  ASDG G = ASDG::build(*P);
  auto Base = scalarize::scalarizeWithStrategy(G, Strategy::Baseline);
  auto Partial = scalarize::scalarizeWithPartialContraction(
      G, Strategy::C2, SequentialDims::dims({0, 1}));
  std::string Why;
  EXPECT_TRUE(resultsMatch(run(Base, GetParam() ^ 0x5555),
                           run(Partial, GetParam() ^ 0x5555), 0.0, &Why))
      << "seed " << GetParam() << ": " << Why << "\n"
      << P->str();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartialEquivalence,
                         ::testing::Range<uint64_t>(1, 41));

} // namespace

//===- tests/PerfModelTest.cpp - Performance model tests --------------------===//

#include "exec/PerfModel.h"

#include "analysis/ASDG.h"
#include "comm/CommInsertion.h"
#include "ir/Normalize.h"
#include "scalarize/Scalarize.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

using namespace alf;
using namespace alf::analysis;
using namespace alf::comm;
using namespace alf::exec;
using namespace alf::ir;
using namespace alf::machine;
using namespace alf::xform;

namespace {

PerfStats simulateStrategy(const Program &P, Strategy S, const MachineDesc &M,
                           unsigned Procs, bool WithComm = false) {
  ASDG G = ASDG::build(P);
  auto LP = scalarize::scalarizeWithStrategy(G, S);
  if (WithComm)
    insertLoopLevelComm(LP);
  return simulate(LP, M, ProcGrid::make(Procs, 2));
}

TEST(PerfModelTest, ContractionReducesReferences) {
  auto P = tp::makeUserTempPair(64);
  MachineDesc M = crayT3E();
  PerfStats Base = simulateStrategy(*P, Strategy::Baseline, M, 1);
  PerfStats Opt = simulateStrategy(*P, Strategy::C2, M, 1);
  // Baseline: S0 issues 2 reads + 1 write, S1 1 read + 1 write = 5 refs
  // per element. Contracted: 2 reads + 1 write = 3 refs per element.
  EXPECT_EQ(Base.Refs, 5u * 64 * 64);
  EXPECT_EQ(Opt.Refs, 3u * 64 * 64);
  EXPECT_EQ(Base.Flops, Opt.Flops);
  EXPECT_LT(Opt.totalNs(), Base.totalNs());
}

TEST(PerfModelTest, ContractionImprovesTomcatvFragment) {
  auto P = tp::makeTomcatvFragment(2048);
  normalizeProgram(*P);
  MachineDesc M = crayT3E();
  PerfStats Base = simulateStrategy(*P, Strategy::Baseline, M, 1);
  PerfStats Opt = simulateStrategy(*P, Strategy::C2, M, 1);
  double Improvement = percentImprovement(Base, Opt);
  EXPECT_GT(Improvement, 5.0) << "contraction should speed up the fragment";
}

TEST(PerfModelTest, FusionImprovesTemporalLocality) {
  // Two readers of a large array A: fused, the second read of A[i] hits
  // in L1; unfused, A is re-streamed after eviction.
  Program P("reuse");
  const Region *R = P.regionFromExtents({512, 64}); // 256 KB array
  ArraySymbol *A = P.makeArray("A", 2);
  ArraySymbol *B = P.makeArray("B", 2);
  ArraySymbol *C = P.makeArray("C", 2);
  P.assign(R, B, add(aref(A), aref(A)));
  P.assign(R, C, mul(aref(A), aref(A)));
  MachineDesc M = crayT3E();
  PerfStats Unfused = simulateStrategy(P, Strategy::Baseline, M, 1);
  PerfStats Fused = simulateStrategy(P, Strategy::C2F3, M, 1);
  EXPECT_LT(Fused.MemRefs, Unfused.MemRefs);
  EXPECT_LT(Fused.totalNs(), Unfused.totalNs());
}

TEST(PerfModelTest, NoCommunicationOnOneProcessor) {
  Program P("stencil");
  const Region *R = P.regionFromExtents({64, 64});
  ArraySymbol *A = P.makeArray("A", 2);
  ArraySymbol *B = P.makeArray("B", 2);
  P.assign(R, B, add(aref(A, {-1, 0}), aref(A, {0, 1})));
  MachineDesc M = ibmSP2();
  PerfStats P1 = simulateStrategy(P, Strategy::Baseline, M, 1, true);
  PerfStats P4 = simulateStrategy(P, Strategy::Baseline, M, 4, true);
  EXPECT_EQ(P1.Messages, 0u);
  EXPECT_DOUBLE_EQ(P1.CommNs, 0.0);
  EXPECT_EQ(P4.Messages, 2u);
  EXPECT_GT(P4.CommNs, 0.0);
}

TEST(PerfModelTest, PipelinedSendRecvOverlaps) {
  // Producer -> big independent work -> consumer: the pipelined pair
  // costs less than a whole exchange at the consumer.
  auto Build = [](Program &P) {
    const Region *R = P.regionFromExtents({64, 64});
    ArraySymbol *A = P.makeArray("A", 2);
    ArraySymbol *B = P.makeArray("B", 2);
    ArraySymbol *C = P.makeArray("C", 2);
    ArraySymbol *D = P.makeArray("D", 2);
    P.assign(R, A, aref(B));
    // Independent compute-heavy statement.
    P.assign(R, C, esqrt(eexp(add(aref(D), aref(D)))));
    P.assign(R, D, aref(A, {0, 1}));
  };
  MachineDesc M = intelParagon();
  ProcGrid Grid = ProcGrid::make(4, 2);

  Program Split("split");
  Build(Split);
  insertArrayLevelComm(Split, /*Pipelined=*/true);
  ASDG GS = ASDG::build(Split);
  auto LPS = scalarize::scalarizeWithStrategy(GS, Strategy::Baseline);
  PerfStats Piped = simulate(LPS, M, Grid);

  Program Whole("whole");
  Build(Whole);
  insertArrayLevelComm(Whole, /*Pipelined=*/false);
  ASDG GW = ASDG::build(Whole);
  auto LPW = scalarize::scalarizeWithStrategy(GW, Strategy::Baseline);
  PerfStats Plain = simulate(LPW, M, Grid);

  EXPECT_LT(Piped.CommNs, Plain.CommNs);
  EXPECT_EQ(Piped.Messages, Plain.Messages);
}

TEST(PerfModelTest, GlobalReductionScalesWithLogP) {
  Program P("reduce");
  const Region *R = P.regionFromExtents({32});
  ArraySymbol *A = P.makeArray("A", 1);
  ScalarSymbol *S = P.makeScalar("sum");
  P.opaque("global-sum", R, {A}, {}, {}, {S}, 1.0, /*GlobalReduction=*/true);
  MachineDesc M = crayT3E();
  ASDG G = ASDG::build(P);
  auto LP = scalarize::scalarizeWithStrategy(G, Strategy::Baseline);
  PerfStats P1 = simulate(LP, M, ProcGrid::make(1, 1));
  PerfStats P16 = simulate(LP, M, ProcGrid::make(16, 1));
  PerfStats P64 = simulate(LP, M, ProcGrid::make(64, 1));
  EXPECT_DOUBLE_EQ(P1.CommNs, 0.0);
  EXPECT_DOUBLE_EQ(P16.CommNs, 4 * M.ReduceStepCost);
  EXPECT_DOUBLE_EQ(P64.CommNs, 6 * M.ReduceStepCost);
}

TEST(PerfModelTest, PercentImprovement) {
  PerfStats A, B;
  A.ComputeNs = 200.0;
  B.ComputeNs = 100.0;
  EXPECT_DOUBLE_EQ(percentImprovement(A, B), 100.0);
  EXPECT_DOUBLE_EQ(percentImprovement(B, A), -50.0);
}

TEST(PerfModelTest, MachinesRankPlausibly) {
  // For working sets beyond every cache, the same work takes longest on
  // the Paragon and least on the T3E.
  auto P = tp::makeTomcatvFragment(8192);
  normalizeProgram(*P);
  PerfStats T3E = simulateStrategy(*P, Strategy::Baseline, crayT3E(), 1);
  PerfStats SP2 = simulateStrategy(*P, Strategy::Baseline, ibmSP2(), 1);
  PerfStats Paragon =
      simulateStrategy(*P, Strategy::Baseline, intelParagon(), 1);
  EXPECT_LT(T3E.totalNs(), SP2.totalNs());
  EXPECT_LT(SP2.totalNs(), Paragon.totalNs());
}

} // namespace

//===- tests/BenchmarkTest.cpp - Benchmark census tests (Figures 7/8) -------===//

#include "benchprogs/Benchmarks.h"

#include "analysis/ASDG.h"
#include "exec/Interpreter.h"
#include "exec/MemoryAccounting.h"
#include "ir/Normalize.h"
#include "ir/Verifier.h"
#include "scalarize/Scalarize.h"
#include "xform/Strategy.h"

#include <gtest/gtest.h>

using namespace alf;
using namespace alf::analysis;
using namespace alf::benchprogs;
using namespace alf::exec;
using namespace alf::ir;
using namespace alf::xform;

namespace {

struct CensusPair {
  MemoryCensus Before;
  MemoryCensus After;
};

CensusPair censusOf(const BenchmarkInfo &B, int64_t N = 8) {
  auto P = B.Build(N);
  normalizeProgram(*P);
  EXPECT_TRUE(isWellFormed(*P)) << B.Name;
  ASDG G = ASDG::build(*P);
  StrategyResult SR = applyStrategy(G, Strategy::C2);
  std::set<const ArraySymbol *> Contracted(SR.Contracted.begin(),
                                           SR.Contracted.end());
  return CensusPair{computeCensus(*P, {}), computeCensus(*P, Contracted)};
}

class BenchmarkCensus : public ::testing::TestWithParam<unsigned> {};

TEST_P(BenchmarkCensus, StaticArraysMatchFigure7) {
  const BenchmarkInfo &B = allBenchmarks()[GetParam()];
  CensusPair C = censusOf(B);
  EXPECT_EQ(C.Before.StaticArrays, B.PaperStaticBefore) << B.Name;
  EXPECT_EQ(C.Before.StaticCompiler, B.PaperCompilerBefore) << B.Name;
  EXPECT_EQ(C.After.StaticArrays, B.PaperStaticAfter) << B.Name;
  EXPECT_EQ(C.After.StaticCompiler, 0u)
      << B.Name << ": all compiler arrays must be eliminated (Figure 7)";
}

TEST_P(BenchmarkCensus, PeakLiveMatchesFigure8) {
  const BenchmarkInfo &B = allBenchmarks()[GetParam()];
  CensusPair C = censusOf(B);
  EXPECT_EQ(C.Before.PeakLive, B.PaperLb) << B.Name;
  EXPECT_EQ(C.After.PeakLive, B.PaperLa) << B.Name;
}

TEST_P(BenchmarkCensus, AllStrategiesPreserveSemantics) {
  const BenchmarkInfo &B = allBenchmarks()[GetParam()];
  auto P = B.Build(B.Rank == 1 ? 64 : 10);
  normalizeProgram(*P);
  ASDG G = ASDG::build(*P);
  auto Base = scalarize::scalarizeWithStrategy(G, Strategy::Baseline);
  RunResult BaseRes = run(Base, 1234);
  for (Strategy S : allStrategiesForTest()) {
    auto LP = scalarize::scalarizeWithStrategy(G, S);
    std::string Why;
    EXPECT_TRUE(resultsMatch(BaseRes, run(LP, 1234), 1e-9, &Why))
        << B.Name << " under " << getStrategyName(S) << ": " << Why;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSix, BenchmarkCensus,
                         ::testing::Range(0u, 6u),
                         [](const ::testing::TestParamInfo<unsigned> &Info) {
                           return allBenchmarks()[Info.param].Name;
                         });

TEST(BenchmarkTest, RowOrderMatchesFigure7) {
  const auto &All = allBenchmarks();
  ASSERT_EQ(All.size(), 6u);
  EXPECT_EQ(All[0].Name, "EP");
  EXPECT_EQ(All[1].Name, "Frac");
  EXPECT_EQ(All[2].Name, "SP");
  EXPECT_EQ(All[3].Name, "Tomcatv");
  EXPECT_EQ(All[4].Name, "Simple");
  EXPECT_EQ(All[5].Name, "Fibro");
}

TEST(BenchmarkTest, EPAndFibroNeedNoCompilerArrays) {
  // "The smaller benchmarks, such as Fibro, EP and Frac, require no
  // compiler arrays, so they do not benefit from f1 and c1."
  for (unsigned Idx : {0u, 1u, 5u}) {
    const BenchmarkInfo &B = allBenchmarks()[Idx];
    auto P = B.Build(8);
    EXPECT_EQ(normalizeProgram(*P), 0u) << B.Name;
    ASDG G = ASDG::build(*P);
    StrategyResult C1 = applyStrategy(G, Strategy::C1);
    EXPECT_TRUE(C1.Contracted.empty()) << B.Name;
  }
}

TEST(BenchmarkTest, ProblemSizeScalesWithContraction) {
  // Figure 8's claim: max problem size is inversely proportional to the
  // peak live array count. Verify for Tomcatv with a byte budget.
  const BenchmarkInfo &B = allBenchmarks()[3];
  auto BytesFor = [&B](bool Contract) {
    return [&B, Contract](int64_t N) -> uint64_t {
      auto P = B.Build(N);
      normalizeProgram(*P);
      std::set<const ArraySymbol *> Contracted;
      if (Contract) {
        ASDG G = ASDG::build(*P);
        StrategyResult SR = applyStrategy(G, Strategy::C2);
        Contracted.insert(SR.Contracted.begin(), SR.Contracted.end());
      }
      return computeCensus(*P, Contracted).PeakBytes;
    };
  };
  uint64_t Budget = 64ull << 20; // 64 MB
  int64_t MaxBefore = findMaxProblemSize(BytesFor(false), Budget, 16384);
  int64_t MaxAfter = findMaxProblemSize(BytesFor(true), Budget, 16384);
  EXPECT_GT(MaxAfter, MaxBefore);
  // Volume ratio should approach lb/la = 19/7.
  double VolRatio = static_cast<double>(MaxAfter) * MaxAfter /
                    (static_cast<double>(MaxBefore) * MaxBefore);
  EXPECT_NEAR(VolRatio, 19.0 / 7.0, 0.25);
}

} // namespace

//===- tests/StressSweepTest.cpp - Differential seed sweep ------------------===//
//
// The randomized cross-validation that tools/alf_stress runs for hours,
// distilled into a ctest-sized sweep: deterministic seeds drive the
// program generator through configurations the targeted tests never
// reach (rank 1 and 3, explicit target offsets, mixed regions), and
// every generated program is executed by the sequential interpreter
// under every fusion strategy, by the partial-contraction pipeline, and
// by the parallel executor — all of which must agree exactly with the
// unoptimized baseline.
//
// Every compilation here runs through driver::Pipeline at
// VerifyLevel::Full with a collecting error handler, so the sweep is
// simultaneously a translation-validation soak: a dependence-oracle
// mismatch, failed legality proof, or statically detected race on any of
// the seeds fails the test even when the outputs happen to agree.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "exec/Eval.h"
#include "exec/Interpreter.h"
#include "exec/NativeJit.h"
#include "exec/ParallelExecutor.h"
#include "ir/Generator.h"
#include "ir/Normalize.h"
#include "ir/Verifier.h"
#include "obs/Obs.h"
#include "runtime/Runtime.h"
#include "scalarize/CEmitter.h"
#include "scalarize/Scalarize.h"
#include "support/Statistic.h"
#include "support/Ulp.h"
#include "verify/Verify.h"
#include "xform/IlpStrategy.h"
#include "xform/Strategy.h"

#include <filesystem>
#include <gtest/gtest.h>
#include <map>
#include <unistd.h>

using namespace alf;
using namespace alf::analysis;
using namespace alf::exec;
using namespace alf::ir;
using namespace alf::xform;

namespace {

/// Mirrors the config derivation of tools/alf_stress: small programs,
/// deterministic in the seed, cycling through ranks 1-3 and the
/// generator features (target offsets, two regions, opaque statements)
/// that block or reshape fusion.
GeneratorConfig sweepConfig(uint64_t Seed) {
  GeneratorConfig Cfg;
  Cfg.Seed = Seed;
  Cfg.NumStmts = 4 + static_cast<unsigned>(Seed % 9);
  Cfg.NumPersistent = 2 + static_cast<unsigned>(Seed % 3);
  Cfg.NumTemps = 2 + static_cast<unsigned>((Seed / 3) % 4);
  Cfg.Rank = 1 + static_cast<unsigned>(Seed % 3);
  Cfg.Extent = Cfg.Rank == 3 ? 4 : 6 + static_cast<int64_t>(Seed % 4);
  Cfg.MaxOffset = 1 + static_cast<unsigned>(Seed % 2);
  Cfg.AllowTargetOffsets = Seed % 4 == 1;
  Cfg.UseTwoRegions = Seed % 5 == 0;
  Cfg.AddOpaque = Seed % 7 == 0;
  return Cfg;
}

class StressSweepTest : public ::testing::TestWithParam<uint64_t> {};

/// Pipeline options for the sweep: full translation validation, findings
/// collected into \p Collected instead of aborting so the test can print
/// them with the offending program attached.
driver::PipelineOptions fullVerifyOptions(verify::VerifyReport &Collected,
                                          unsigned NumThreads = 1) {
  driver::PipelineOptions PO;
  PO.Verify = verify::VerifyLevel::Full;
  PO.Parallel.NumThreads = NumThreads;
  PO.OnVerifyError = [&Collected](const verify::VerifyReport &R) {
    for (const verify::VerifyFinding &F : R.Findings)
      Collected.Findings.push_back(F);
  };
  return PO;
}

TEST_P(StressSweepTest, AllStrategiesAndExecutorsAgree) {
  uint64_t Seed = GetParam();
  GeneratorConfig Cfg = sweepConfig(Seed);
  auto P = generateRandomProgram(Cfg);
  verify::VerifyReport Collected;
  unsigned NumThreads = 1 + static_cast<unsigned>(Seed % 4); // 1..4
  driver::Pipeline PL(*P, fullVerifyOptions(Collected, NumThreads));
  ASSERT_TRUE(isWellFormed(PL.program())) << P->str();
  const ASDG &G = PL.asdg();

  uint64_t RunSeed = Seed ^ 0xfeed;
  auto Base = PL.scalarize(Strategy::Baseline);
  RunResult BaseRes = run(Base, RunSeed);

  // Every strategy, sequential and parallel, against the baseline oracle.
  // PL.run(ExecMode::Parallel) race-checks each schedule before running.
  for (Strategy S : allStrategiesForTest()) {
    StrategyResult SR = PL.strategy(S);
    ASSERT_TRUE(isValidPartition(SR.Partition))
        << getStrategyName(S) << "\n" << P->str();
    auto LP = PL.scalarize(SR);
    std::string Why;
    ASSERT_TRUE(resultsMatch(BaseRes, run(LP, RunSeed), 0.0, &Why))
        << getStrategyName(S) << " sequential diverged: " << Why << "\n"
        << P->str();
    ASSERT_TRUE(resultsMatch(
        BaseRes, PL.run(LP, ExecMode::Parallel, RunSeed), 0.0, &Why))
        << getStrategyName(S) << " parallel (" << NumThreads
        << " threads) diverged: " << Why << "\n"
        << P->str();
  }

  // Partial contraction (rolling buffers), sequential and parallel. The
  // rolling-buffer schedule is certified explicitly (it is built outside
  // the pipeline's strategy path).
  {
    auto LP = scalarize::scalarizeWithPartialContraction(
        G, Strategy::C2, SequentialDims::dims({0, 1}));
    ParallelSchedule Sched = planParallelism(LP);
    Collected.take(verify::verifyParallelSafety(LP, Sched));
    ParallelOptions Opts;
    Opts.NumThreads = NumThreads;
    std::string Why;
    ASSERT_TRUE(resultsMatch(BaseRes, run(LP, RunSeed), 0.0, &Why))
        << "partial contraction diverged: " << Why << "\n" << P->str();
    ASSERT_TRUE(resultsMatch(BaseRes, runParallel(LP, RunSeed, Opts, Sched),
                             0.0, &Why))
        << "partial contraction parallel diverged: " << Why << "\n"
        << P->str();
  }

  EXPECT_TRUE(Collected.ok())
      << "verification findings:\n" << Collected.str() << P->str();
}

// The semiring sweep: the same generated programs with 1-2 reduction
// statements appended, rotating through the whole semiring registry by
// seed. Every strategy's sequential and parallel runs must agree
// bit-exactly with the unoptimized baseline, and a seed subset also runs
// the native JIT — so min-plus/max-times/or-and accumulator init and
// combine are cross-validated on every backend at VerifyLevel::Full
// (which additionally re-proves each semiring's declared algebra).
TEST_P(StressSweepTest, SemiringAgrees) {
  uint64_t Seed = GetParam();
  GeneratorConfig Cfg = sweepConfig(Seed);
  const auto &Regs = semiring::all();
  Cfg.NumReduce = 1 + static_cast<unsigned>(Seed % 2);
  Cfg.ReduceSemiring = Regs[Seed % Regs.size()];
  auto P = generateRandomProgram(Cfg);
  verify::VerifyReport Collected;
  unsigned NumThreads = 1 + static_cast<unsigned>(Seed % 4); // 1..4
  driver::Pipeline PL(*P, fullVerifyOptions(Collected, NumThreads));
  ASSERT_TRUE(isWellFormed(PL.program())) << P->str();

  uint64_t RunSeed = Seed ^ 0xabcd;
  auto Base = PL.scalarize(Strategy::Baseline);
  RunResult BaseRes = run(Base, RunSeed);

  for (Strategy S : allStrategiesForTest()) {
    StrategyResult SR = PL.strategy(S);
    ASSERT_TRUE(isValidPartition(SR.Partition))
        << getStrategyName(S) << "\n" << P->str();
    auto LP = PL.scalarize(SR);
    std::string Why;
    ASSERT_TRUE(resultsMatch(BaseRes, run(LP, RunSeed), 0.0, &Why))
        << getStrategyName(S) << " sequential diverged under "
        << Cfg.ReduceSemiring->Name << ": " << Why << "\n" << P->str();
    ASSERT_TRUE(resultsMatch(
        BaseRes, PL.run(LP, ExecMode::Parallel, RunSeed), 0.0, &Why))
        << getStrategyName(S) << " parallel diverged under "
        << Cfg.ReduceSemiring->Name << ": " << Why << "\n" << P->str();
  }

  if (Seed % 10 == 0 && JitEngine::compilerAvailable()) {
    auto LP = PL.scalarize(Strategy::C2);
    JitRunInfo Info;
    RunResult JitRes = runNativeJit(LP, RunSeed, &Info);
    ASSERT_TRUE(Info.UsedJit)
        << "jit fell back: " << Info.FallbackReason << "\n" << P->str();
    std::string Why;
    ASSERT_TRUE(resultsMatch(BaseRes, JitRes, 0.0, &Why))
        << "jit diverged under " << Cfg.ReduceSemiring->Name << ": " << Why
        << "\n" << P->str();
  }

  EXPECT_TRUE(Collected.ok())
      << "verification findings:\n" << Collected.str() << P->str();
}

// The same sweep through the native JIT backend. A strategy subset keeps
// the number of distinct kernels (hence compiler invocations on a cold
// cache) bounded; the process-wide engine honors $ALF_JIT_CACHE_DIR, so
// CI reruns hit the disk cache and compile nothing.
TEST_P(StressSweepTest, NativeJitAgrees) {
  if (!JitEngine::compilerAvailable())
    GTEST_SKIP() << "no usable system C compiler";

  uint64_t Seed = GetParam();
  GeneratorConfig Cfg = sweepConfig(Seed);
  auto P = generateRandomProgram(Cfg);
  verify::VerifyReport Collected;
  driver::Pipeline PL(*P, fullVerifyOptions(Collected));
  ASSERT_TRUE(isWellFormed(PL.program())) << P->str();

  uint64_t RunSeed = Seed ^ 0xfeed;
  auto Base = PL.scalarize(Strategy::Baseline);
  RunResult BaseRes = run(Base, RunSeed);

  for (Strategy S : {Strategy::Baseline, Strategy::C2, Strategy::C2F3}) {
    auto LP = PL.scalarize(S);
    JitRunInfo Info;
    RunResult JitRes = runNativeJit(LP, RunSeed, &Info);
    ASSERT_TRUE(Info.UsedJit)
        << getStrategyName(S)
        << " fell back to the interpreter: " << Info.FallbackReason << "\n"
        << P->str();
    std::string Why;
    ASSERT_TRUE(resultsMatch(BaseRes, JitRes, 0.0, &Why))
        << getStrategyName(S) << " jit diverged: " << Why << "\n"
        << P->str();
  }

  EXPECT_TRUE(Collected.ok())
      << "verification findings:\n" << Collected.str() << P->str();
}

/// ULP-aware counterpart of exec::resultsMatch for the vectorizing
/// backend: every live-out element and output scalar must agree with the
/// oracle under the declared tolerance (support::agreeWithin). \p MaxSeen
/// accumulates the largest distance observed so the sweep can report how
/// much of the ULP budget reassociation actually consumed.
bool ulpResultsMatch(const RunResult &A, const RunResult &B,
                     support::Tolerance Tol, uint64_t MaxUlps,
                     uint64_t &MaxSeen, std::string *WhyNot) {
  auto Check = [&](const std::string &Where, double VA, double VB) {
    uint64_t D = support::ulpDistance(VA, VB);
    if (D != UINT64_MAX && D > MaxSeen)
      MaxSeen = D;
    if (support::agreeWithin(VA, VB, Tol, MaxUlps))
      return true;
    if (WhyNot)
      *WhyNot = Where + ": " + std::to_string(VA) + " vs " +
                std::to_string(VB) + " (" +
                (D == UINT64_MAX ? std::string("NaN mismatch")
                                 : std::to_string(D) + " ulps") +
                " under " + support::getToleranceName(Tol) + ")";
    return false;
  };
  if (A.LiveOut.size() != B.LiveOut.size() ||
      A.ScalarsOut.size() != B.ScalarsOut.size()) {
    if (WhyNot)
      *WhyNot = "different live-out sets";
    return false;
  }
  for (const auto &[Name, DataA] : A.LiveOut) {
    auto It = B.LiveOut.find(Name);
    if (It == B.LiveOut.end() || It->second.size() != DataA.size()) {
      if (WhyNot)
        *WhyNot = "array " + Name + " missing or differently sized";
      return false;
    }
    for (size_t I = 0; I < DataA.size(); ++I)
      if (!Check(Name + "[" + std::to_string(I) + "]", DataA[I],
                 It->second[I]))
        return false;
  }
  for (const auto &[Name, VA] : A.ScalarsOut) {
    auto It = B.ScalarsOut.find(Name);
    if (It == B.ScalarsOut.end()) {
      if (WhyNot)
        *WhyNot = "scalar " + Name + " missing from second result";
      return false;
    }
    if (!Check("scalar " + Name, VA, It->second))
      return false;
  }
  return true;
}

// The vectorizing-backend sweep: the same generated programs (odd seeds
// pure elementwise, even seeds with semiring reductions appended, the
// registry rotating by seed) run under ExecMode::NativeJitSimd and are
// compared against the interpreter oracle under the tolerance
// scalarize::simdToleranceFor declares for each loop program —
//
//   Exact             bit-identical, asserted at 0 ULP: elementwise code
//                     and every compare/bitwise ⊕ fold (min/max/or select
//                     an operand, so lane-splitting cannot change bits);
//   ReassociatedFloat a float + reduction was kept in vector lanes and
//                     folded at loop exit, asserted within a small ULP
//                     budget.
//
// A single test (not a per-seed TEST_P shard) so the sweep can assert
// the aggregate property the ISSUE demands: at least one seed's nests
// actually vectorized — via JitRunInfo and, independently, via the
// process-wide "jit.vectorize" statistics group. Nests the legality
// check refuses fall back to the scalar spelling inside the same kernel
// and must still match exactly, and a seed subset re-runs the vectorized
// emission under the ASan/UBSan harness oracle so lane loads/stores and
// the peeled remainder are also proven in-bounds dynamically.
TEST(StressSweepSimdTest, SimdAgrees) {
  if (!JitEngine::compilerAvailable())
    GTEST_SKIP() << "no usable system C compiler";

  const uint64_t MaxUlps = 16384; // ~4e-12 relative: reassociation noise,
                                  // not a wrong-code bug, fits far below
  uint64_t VecBefore =
      getStatisticValue("jit.vectorize", "NumVectorizedNests");
  unsigned SeedsVectorized = 0, SeedsReassociated = 0, SeedsFellBack = 0;
  uint64_t MaxSeen = 0;

  for (uint64_t Seed = 1; Seed <= 50; ++Seed) {
    GeneratorConfig Cfg = sweepConfig(Seed);
    const auto &Regs = semiring::all();
    if (Seed % 2 == 0) {
      Cfg.NumReduce = 1 + static_cast<unsigned>(Seed % 2);
      Cfg.ReduceSemiring = Regs[(Seed / 2) % Regs.size()];
    }
    auto P = generateRandomProgram(Cfg);
    verify::VerifyReport Collected;
    driver::Pipeline PL(*P, fullVerifyOptions(Collected));
    ASSERT_TRUE(isWellFormed(PL.program())) << P->str();

    uint64_t RunSeed = Seed ^ 0x51fd;
    RunResult BaseRes = run(PL.scalarize(Strategy::Baseline), RunSeed);

    bool Vectorized = false, Reassociated = false, FellBack = false;
    for (Strategy S : {Strategy::Baseline, Strategy::C2}) {
      auto LP = PL.scalarize(S);
      support::Tolerance Tol = scalarize::simdToleranceFor(LP);
      JitRunInfo Info;
      RunResult SimdRes = runNativeJitSimd(LP, RunSeed, &Info);
      ASSERT_TRUE(Info.UsedJit)
          << getStrategyName(S)
          << " fell back to the interpreter: " << Info.FallbackReason
          << "\n" << P->str();
      Vectorized |= Info.VectorizedNests > 0;
      Reassociated |= Info.Reassociated;
      FellBack |= Info.VectorFallbacks > 0;

      // The tolerance contract: the emitter may reassociate only when
      // simdToleranceFor announced it, so callers that pre-declare their
      // comparison mode from the loop program are never surprised.
      if (Tol == support::Tolerance::Exact)
        ASSERT_FALSE(Info.Reassociated)
            << getStrategyName(S)
            << " reassociated under a declared-exact program\n" << P->str();

      std::string Why;
      ASSERT_TRUE(
          ulpResultsMatch(BaseRes, SimdRes, Tol, MaxUlps, MaxSeen, &Why))
          << getStrategyName(S) << " jit-simd diverged ("
          << support::getToleranceName(Tol) << "): " << Why << "\n"
          << "vectorized=" << Info.VectorizedNests
          << " fallbacks=" << Info.VectorFallbacks << "\n" << P->str();
    }
    SeedsVectorized += Vectorized;
    SeedsReassociated += Reassociated;
    SeedsFellBack += FellBack;

    // Dynamic oracle over the vectorized spelling: on a thin subset,
    // compile the same emission with ASan/UBSan and run it out of
    // process — vector loads, stores and the peeled remainder must be
    // as in-bounds as the scalar kernel the analyzer certified.
    if (Seed % 10 == 0) {
      auto LP = PL.scalarize(Strategy::C2);
      JitOptions JO;
      JO.Sanitize = true;
      JO.Vectorize = true;
      SanitizedRunResult San = runSanitized(LP, RunSeed, JO);
      ASSERT_TRUE(San.Ran)
          << "sanitizer oracle did not run: " << San.Output;
      EXPECT_TRUE(San.Clean)
          << "vectorized kernel tripped the sanitizer (exit "
          << San.ExitCode << "):\n" << San.Output << P->str();
    }

    EXPECT_TRUE(Collected.ok())
        << "verification findings:\n" << Collected.str() << P->str();
  }

  // The sweep is only evidence if SIMD code actually ran: at least one
  // seed must vectorize, observed both per-run and in the statistics
  // group the backend maintains.
  EXPECT_GE(SeedsVectorized, 1u)
      << "no seed produced a single vectorized nest";
  EXPECT_GT(getStatisticValue("jit.vectorize", "NumVectorizedNests"),
            VecBefore)
      << "jit.vectorize statistics never moved";
  RecordProperty("seeds_vectorized", static_cast<int>(SeedsVectorized));
  RecordProperty("seeds_reassociated", static_cast<int>(SeedsReassociated));
  RecordProperty("seeds_with_fallback", static_cast<int>(SeedsFellBack));
  RecordProperty("max_ulp_distance", static_cast<int>(MaxSeen));
}

// The optimality property test for the branch-and-bound partitioner
// (xform/IlpStrategy): on every seed, the ILP partition must (a) pass
// the same VerifyLevel::Full re-proof as any other strategy (checked by
// PL.strategy through the collecting handler), (b) produce programs
// bit-identical to both the baseline oracle and the greedy c2 partition
// across the interpreter, the parallel executor and (on a subset) the
// native JIT, and (c) achieve an objective — contracted bytes — at
// least as large as greedy FUSION-FOR-CONTRACTION's. The solver is
// exact up to its node budget, and its incumbent is seeded with the
// greedy solution, so (c) must hold on every seed, budget or not.
TEST_P(StressSweepTest, IlpStrategyAgrees) {
  uint64_t Seed = GetParam();
  GeneratorConfig Cfg = sweepConfig(Seed);
  auto P = generateRandomProgram(Cfg);
  verify::VerifyReport Collected;
  unsigned NumThreads = 1 + static_cast<unsigned>(Seed % 4); // 1..4
  driver::Pipeline PL(*P, fullVerifyOptions(Collected, NumThreads));
  ASSERT_TRUE(isWellFormed(PL.program())) << P->str();

  uint64_t RunSeed = Seed ^ 0xfeed;
  auto Base = PL.scalarize(Strategy::Baseline);
  RunResult BaseRes = run(Base, RunSeed);

  StrategyResult Greedy = PL.strategy(Strategy::C2);
  StrategyResult Ilp = PL.strategy(Strategy::IlpOptimal);
  ASSERT_TRUE(isValidPartition(Ilp.Partition)) << P->str();

  // The optimality property: never a smaller objective than greedy.
  double GreedyBytes = contractedBytes(Greedy.Partition, Greedy.Contracted);
  double IlpBytes = contractedBytes(Ilp.Partition, Ilp.Contracted);
  EXPECT_GE(IlpBytes, GreedyBytes)
      << "ilp objective regressed below greedy\n" << P->str();

  // Differential execution: greedy-partitioned and ILP-partitioned
  // programs must be bit-identical to the unoptimized baseline (and so
  // to each other) on every executor.
  auto GreedyLP = PL.scalarize(Greedy);
  auto IlpLP = PL.scalarize(Ilp);
  std::string Why;
  ASSERT_TRUE(resultsMatch(BaseRes, run(GreedyLP, RunSeed), 0.0, &Why))
      << "greedy sequential diverged: " << Why << "\n" << P->str();
  ASSERT_TRUE(resultsMatch(BaseRes, run(IlpLP, RunSeed), 0.0, &Why))
      << "ilp sequential diverged: " << Why << "\n" << P->str();
  ASSERT_TRUE(resultsMatch(BaseRes,
                           PL.run(IlpLP, ExecMode::Parallel, RunSeed), 0.0,
                           &Why))
      << "ilp parallel (" << NumThreads << " threads) diverged: " << Why
      << "\n" << P->str();
  if (Seed % 10 == 0 && JitEngine::compilerAvailable()) {
    JitRunInfo Info;
    RunResult JitRes = runNativeJit(IlpLP, RunSeed, &Info);
    ASSERT_TRUE(Info.UsedJit) << "ilp jit fell back: " << Info.FallbackReason
                              << "\n" << P->str();
    ASSERT_TRUE(resultsMatch(BaseRes, JitRes, 0.0, &Why))
        << "ilp jit diverged: " << Why << "\n" << P->str();
  }

  EXPECT_TRUE(Collected.ok())
      << "verification findings:\n" << Collected.str() << P->str();
}

/// Rebuilds an IR right-hand side as a runtime expression over the given
/// handles. The generator emits exactly the normal-form node kinds the
/// runtime API can express.
runtime::Ex toRuntimeEx(const Expr *E,
                        const std::map<std::string, runtime::Array> &H) {
  switch (E->getKind()) {
  case Expr::ExprKind::Const:
    return runtime::Ex(cast<ConstExpr>(E)->getValue());
  case Expr::ExprKind::ArrayRef: {
    const auto *A = cast<ArrayRefExpr>(E);
    return runtime::shift(H.at(A->getSymbol()->getName()), A->getOffset());
  }
  case Expr::ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    runtime::Ex Op = toRuntimeEx(U->getOperand(), H);
    switch (U->getOpcode()) {
    case UnaryExpr::Opcode::Neg:
      return -Op;
    case UnaryExpr::Opcode::Abs:
      return runtime::eabs(Op);
    case UnaryExpr::Opcode::Sqrt:
      return runtime::esqrt(Op);
    case UnaryExpr::Opcode::Exp:
      return runtime::eexp(Op);
    case UnaryExpr::Opcode::Log:
      return runtime::elog(Op);
    case UnaryExpr::Opcode::Sin:
      return runtime::esin(Op);
    case UnaryExpr::Opcode::Cos:
      return runtime::ecos(Op);
    case UnaryExpr::Opcode::Recip:
      return runtime::recip(Op);
    }
    break;
  }
  case Expr::ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    runtime::Ex L = toRuntimeEx(B->getLHS(), H);
    runtime::Ex R = toRuntimeEx(B->getRHS(), H);
    switch (B->getOpcode()) {
    case BinaryExpr::Opcode::Add:
      return L + R;
    case BinaryExpr::Opcode::Sub:
      return L - R;
    case BinaryExpr::Opcode::Mul:
      return L * R;
    case BinaryExpr::Opcode::Div:
      return L / R;
    case BinaryExpr::Opcode::Min:
      return runtime::emin(L, R);
    case BinaryExpr::Opcode::Max:
      return runtime::emax(L, R);
    }
    break;
  }
  case Expr::ExprKind::ScalarRef:
    break;
  }
  ADD_FAILURE() << "unexpected expression kind in generated program";
  return runtime::Ex(0.0);
}

// The same generated programs replayed through the deferred-evaluation
// engine: inputs seeded exactly as the eager run seeds them, every
// statement recorded via Engine::update, live-out values compared
// bit-exactly against the eager baseline — across flush policies
// (per-statement cap, small cap, explicit-only), execution modes, with
// the trace cache cold (first replay) and warm (second replay through
// the same engine, which must add no cache misses).
TEST_P(StressSweepTest, RuntimeEngineAgrees) {
  uint64_t Seed = GetParam();
  GeneratorConfig Cfg = sweepConfig(Seed);
  Cfg.AddOpaque = false; // the runtime records normal-form statements only

  // Eager oracle.
  auto NP = generateRandomProgram(Cfg);
  normalizeProgram(*NP);
  ASDG G = ASDG::build(*NP);
  uint64_t RunSeed = Seed ^ 0xfeed;
  auto Base = scalarize::scalarizeWithStrategy(G, Strategy::Baseline);
  RunResult BaseRes = run(Base, RunSeed);

  // The exact storage the eager run started from: footprint bounds and
  // seeded live-in contents, keyed by array name.
  Storage Init = allocateStorage(Base, RunSeed);
  std::map<std::string, const ArrayBuffer *> InitBuf;
  for (const ArraySymbol *A : Base.source().arrays())
    if (const ArrayBuffer *Buf = Init.buffer(A))
      InitBuf.emplace(A->getName(), Buf);

  // Pristine (pre-normalization) copy to replay statement by statement;
  // the engine's own pipeline re-derives the normalization.
  auto P = generateRandomProgram(Cfg);

  struct Policy {
    unsigned MaxTraceLen;
    ExecMode Mode;
    bool TraceCache;
  };
  std::vector<Policy> Policies = {
      {1, ExecMode::Sequential, true},   // flush per statement
      {3, ExecMode::Sequential, true},   // short batches
      {0, ExecMode::Sequential, false},  // one whole-program flush, no cache
      {0, ExecMode::Parallel, true},
  };
  // A few seeds also run through the native JIT so the sweep covers the
  // kernel path without compiling hundreds of kernels.
  if (Seed % 10 == 0 && JitEngine::compilerAvailable())
    Policies.push_back({0, ExecMode::NativeJit, true});

  for (const Policy &PC : Policies) {
    runtime::EngineOptions O;
    O.MaxTraceLen = PC.MaxTraceLen;
    O.Mode = PC.Mode;
    O.TraceCache = PC.TraceCache;
    // Every flush's pipeline re-proves its analysis, strategy and (for
    // the parallel policy) schedule; a failed proof aborts the test.
    O.Verify = verify::VerifyLevel::Full;
    O.Parallel.NumThreads = 1 + static_cast<unsigned>(Seed % 4);
    if (PC.Mode == ExecMode::NativeJit)
      O.Jit.CacheDir = (std::filesystem::temp_directory_path() /
                        ("alf-sweep-jit-" + std::to_string(getpid())))
                           .string();
    runtime::Engine E(O);
    uint64_t MissesAfterCold = 0;

    for (int Pass = 0; Pass < 2; ++Pass) {
      std::map<std::string, runtime::Array> H;
      for (const ArraySymbol *A : P->arrays()) {
        auto It = InitBuf.find(A->getName());
        if (It == InitBuf.end())
          continue; // never referenced by any statement
        runtime::Array RA = E.input(A->getName(), It->second->bounds());
        if (A->isLiveIn())
          RA.setAll(It->second->raw());
        H.emplace(A->getName(), std::move(RA));
      }

      for (const Stmt *S : P->stmts()) {
        const auto *NS = dyn_cast<NormalizedStmt>(S);
        ASSERT_NE(NS, nullptr);
        E.update(H.at(NS->getLHS()->getName()), NS->getLHSOffset(),
                 *NS->getRegion(), toRuntimeEx(NS->getRHS(), H));
      }
      E.flush();

      for (const auto &[Name, Expect] : BaseRes.LiveOut) {
        auto It = H.find(Name);
        if (It == H.end())
          continue; // live-out array never referenced: all zero both ways
        std::vector<double> Got = It->second.values();
        ASSERT_EQ(Got.size(), Expect.size()) << Name;
        for (size_t I = 0; I < Got.size(); ++I)
          ASSERT_EQ(Got[I], Expect[I])
              << Name << "[" << I << "] diverged (pass " << Pass
              << ", cap=" << PC.MaxTraceLen
              << ", mode=" << getExecModeName(PC.Mode) << ")\n"
              << P->str();
      }

      if (Pass == 0)
        MissesAfterCold = E.stats().CacheMisses;
      else if (PC.TraceCache)
        // The warm replay is structurally identical: every flush must be
        // served by the trace cache.
        EXPECT_EQ(E.stats().CacheMisses, MissesAfterCold)
            << "warm replay re-analyzed a trace (cap=" << PC.MaxTraceLen
            << ")";
    }
  }
}

// Observability must never perturb results: a subset of the sweep's
// seeds runs every executor mode once at ObsLevel::Off and once at
// ObsLevel::Trace, and the outputs must be bit-identical. Tracing adds
// clock reads and buffer appends around the kernels, so a divergence
// here means instrumentation leaked into evaluation order or storage.
TEST_P(StressSweepTest, TracedRunsAreBitIdentical) {
  uint64_t Seed = GetParam();
  if (Seed % 5 != 0)
    GTEST_SKIP() << "traced-identity subset runs every fifth seed";

  GeneratorConfig Cfg = sweepConfig(Seed);
  auto P = generateRandomProgram(Cfg);
  verify::VerifyReport Collected;
  driver::Pipeline PL(*P, fullVerifyOptions(Collected, 4));
  ASSERT_TRUE(isWellFormed(PL.program())) << P->str();
  auto LP = PL.scalarize(Strategy::C2F3);
  uint64_t RunSeed = Seed ^ 0xfeed;

  auto RunMode = [&](ExecMode Mode) {
    return PL.run(LP, Mode, RunSeed);
  };

  std::vector<ExecMode> Modes = {ExecMode::Sequential, ExecMode::Parallel};
  // JIT on a thinner subset so a cold cache compiles a bounded number of
  // kernels ($ALF_JIT_CACHE_DIR keeps CI reruns warm).
  if (Seed % 10 == 0 && JitEngine::compilerAvailable())
    Modes.push_back(ExecMode::NativeJit);

  for (ExecMode Mode : Modes) {
    RunResult Untraced, Traced;
    {
      obs::ScopedLevel Off(obs::ObsLevel::Off);
      Untraced = RunMode(Mode);
    }
    size_t EventsBefore = obs::numTraceEvents();
    {
      obs::ScopedLevel Trace(obs::ObsLevel::Trace);
      Traced = RunMode(Mode);
    }
    EXPECT_GT(obs::numTraceEvents(), EventsBefore)
        << "traced run recorded no events (" << getExecModeName(Mode)
        << ")";
    std::string Why;
    ASSERT_TRUE(resultsMatch(Untraced, Traced, 0.0, &Why))
        << getExecModeName(Mode)
        << " results changed under tracing: " << Why << "\n"
        << P->str();
  }

  // The runtime engine: replay the program once untraced, once traced,
  // and diff every handle's materialized values bit-exactly.
  {
    Cfg.AddOpaque = false;
    auto RP = generateRandomProgram(Cfg);
    normalizeProgram(*RP);
    auto Base = scalarize::scalarizeWithStrategy(ASDG::build(*RP),
                                                 Strategy::Baseline);
    Storage Init = allocateStorage(Base, RunSeed);
    std::map<std::string, const ArrayBuffer *> InitBuf;
    for (const ArraySymbol *A : Base.source().arrays())
      if (const ArrayBuffer *Buf = Init.buffer(A))
        InitBuf.emplace(A->getName(), Buf);
    auto Pristine = generateRandomProgram(Cfg);

    auto Replay = [&](obs::ObsLevel L) {
      obs::ScopedLevel Scoped(L);
      runtime::EngineOptions O;
      O.Verify = verify::VerifyLevel::Full;
      runtime::Engine E(O);
      std::map<std::string, runtime::Array> H;
      for (const ArraySymbol *A : Pristine->arrays()) {
        auto It = InitBuf.find(A->getName());
        if (It == InitBuf.end())
          continue;
        runtime::Array RA = E.input(A->getName(), It->second->bounds());
        if (A->isLiveIn())
          RA.setAll(It->second->raw());
        H.emplace(A->getName(), std::move(RA));
      }
      for (const Stmt *S : Pristine->stmts()) {
        const auto *NS = dyn_cast<NormalizedStmt>(S);
        EXPECT_NE(NS, nullptr);
        E.update(H.at(NS->getLHS()->getName()), NS->getLHSOffset(),
                 *NS->getRegion(), toRuntimeEx(NS->getRHS(), H));
      }
      E.flush();
      std::map<std::string, std::vector<double>> Values;
      for (auto &[Name, A] : H)
        Values.emplace(Name, A.values());
      return Values;
    };

    auto Untraced = Replay(obs::ObsLevel::Off);
    auto Traced = Replay(obs::ObsLevel::Trace);
    ASSERT_EQ(Untraced.size(), Traced.size());
    for (const auto &[Name, Expect] : Untraced) {
      const std::vector<double> &Got = Traced.at(Name);
      ASSERT_EQ(Got.size(), Expect.size()) << Name;
      for (size_t I = 0; I < Got.size(); ++I)
        ASSERT_EQ(Got[I], Expect[I])
            << Name << "[" << I
            << "] diverged between traced and untraced runtime replays\n"
            << Pristine->str();
    }
  }

  EXPECT_TRUE(Collected.ok())
      << "verification findings:\n" << Collected.str() << P->str();
}

// The safety-tier soak: every seed's program (with reductions appended so
// accumulator-init obligations exist) must certify under the static
// safety checker on every strategy, each scalarizer fault class the hook
// can plant in it must be rejected statically before anything executes,
// and a seed subset cross-checks the analyzer's "clean" verdict against
// the sanitizer-tier JIT oracle: the emitted kernel, compiled standalone
// with ASan/UBSan, must run clean out-of-process.
TEST_P(StressSweepTest, SafetyAgrees) {
  uint64_t Seed = GetParam();
  GeneratorConfig Cfg = sweepConfig(Seed);
  const auto &Regs = semiring::all();
  Cfg.NumReduce = 1 + static_cast<unsigned>(Seed % 2);
  Cfg.ReduceSemiring = Regs[Seed % Regs.size()];
  auto P = generateRandomProgram(Cfg);
  normalizeProgram(*P);
  ASDG G = ASDG::build(*P);

  // Analyzer-clean: every strategy's scalarization certifies.
  for (Strategy S : allStrategiesForTest()) {
    StrategyResult SR = applyStrategy(G, S);
    auto LP = scalarize::scalarize(G, SR);
    verify::VerifyReport R = verify::verifySafety(LP, &G);
    EXPECT_TRUE(R.ok()) << getStrategyName(S) << " reported findings on a "
                        << "clean program:\n" << R.str() << P->str();
  }

  // Each fault class the hook can plant in this seed's program must be
  // caught statically. Not every generated program has a site for every
  // mode (an edge-touching access, a surviving accumulator init, an
  // uncovered live-out plane); scalarizeCorruptionAppliedForTest
  // distinguishes "no site" from "planted and must reject".
  StrategyResult SR = applyStrategy(G, Strategy::C2);
  using SC = scalarize::ScalarizeCorruption;
  for (SC Mode : {SC::OffByOneBound, SC::SkipAccumulatorInit,
                  SC::ShrunkenCopyOut}) {
    scalarize::setScalarizeCorruptionForTest(Mode);
    auto Bad = scalarize::scalarize(G, SR);
    bool Planted = scalarize::scalarizeCorruptionAppliedForTest();
    scalarize::setScalarizeCorruptionForTest(SC::None);
    if (!Planted)
      continue;
    EXPECT_FALSE(verify::verifySafety(Bad, &G).ok())
        << "corruption mode " << static_cast<int>(Mode)
        << " planted a memory-safety bug the checker missed\n" << P->str();
  }

  // The dynamic oracle agrees with the static verdict: analyzer-clean
  // kernels run sanitizer-clean. A thin subset keeps the number of
  // sanitizer compiles (never disk-cached) bounded.
  if (Seed % 10 == 0 && JitEngine::compilerAvailable()) {
    auto LP = scalarize::scalarize(G, SR);
    ASSERT_TRUE(verify::verifySafety(LP, &G).ok());
    JitOptions JO;
    JO.Sanitize = true;
    SanitizedRunResult San = runSanitized(LP, Seed ^ 0xfeed, JO);
    ASSERT_TRUE(San.Ran) << "sanitizer oracle did not run: " << San.Output;
    EXPECT_TRUE(San.Clean)
        << "analyzer-clean kernel tripped the sanitizer (exit "
        << San.ExitCode << "):\n" << San.Output << P->str();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, StressSweepTest,
                         ::testing::Range<uint64_t>(1, 51));

} // namespace

//===- tests/StressSweepTest.cpp - Differential seed sweep ------------------===//
//
// The randomized cross-validation that tools/alf_stress runs for hours,
// distilled into a ctest-sized sweep: deterministic seeds drive the
// program generator through configurations the targeted tests never
// reach (rank 1 and 3, explicit target offsets, mixed regions), and
// every generated program is executed by the sequential interpreter
// under every fusion strategy, by the partial-contraction pipeline, and
// by the parallel executor — all of which must agree exactly with the
// unoptimized baseline.
//
//===----------------------------------------------------------------------===//

#include "exec/Interpreter.h"
#include "exec/NativeJit.h"
#include "exec/ParallelExecutor.h"
#include "ir/Generator.h"
#include "ir/Normalize.h"
#include "ir/Verifier.h"
#include "scalarize/Scalarize.h"
#include "xform/Strategy.h"

#include <gtest/gtest.h>

using namespace alf;
using namespace alf::analysis;
using namespace alf::exec;
using namespace alf::ir;
using namespace alf::xform;

namespace {

/// Mirrors the config derivation of tools/alf_stress: small programs,
/// deterministic in the seed, cycling through ranks 1-3 and the
/// generator features (target offsets, two regions, opaque statements)
/// that block or reshape fusion.
GeneratorConfig sweepConfig(uint64_t Seed) {
  GeneratorConfig Cfg;
  Cfg.Seed = Seed;
  Cfg.NumStmts = 4 + static_cast<unsigned>(Seed % 9);
  Cfg.NumPersistent = 2 + static_cast<unsigned>(Seed % 3);
  Cfg.NumTemps = 2 + static_cast<unsigned>((Seed / 3) % 4);
  Cfg.Rank = 1 + static_cast<unsigned>(Seed % 3);
  Cfg.Extent = Cfg.Rank == 3 ? 4 : 6 + static_cast<int64_t>(Seed % 4);
  Cfg.MaxOffset = 1 + static_cast<unsigned>(Seed % 2);
  Cfg.AllowTargetOffsets = Seed % 4 == 1;
  Cfg.UseTwoRegions = Seed % 5 == 0;
  Cfg.AddOpaque = Seed % 7 == 0;
  return Cfg;
}

class StressSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StressSweepTest, AllStrategiesAndExecutorsAgree) {
  uint64_t Seed = GetParam();
  GeneratorConfig Cfg = sweepConfig(Seed);
  auto P = generateRandomProgram(Cfg);
  normalizeProgram(*P);
  ASSERT_TRUE(isWellFormed(*P)) << P->str();
  ASDG G = ASDG::build(*P);

  uint64_t RunSeed = Seed ^ 0xfeed;
  auto Base = scalarize::scalarizeWithStrategy(G, Strategy::Baseline);
  RunResult BaseRes = run(Base, RunSeed);

  // Every strategy, sequential and parallel, against the baseline oracle.
  ParallelOptions Opts;
  Opts.NumThreads = 1 + static_cast<unsigned>(Seed % 4); // 1..4
  for (Strategy S : allStrategies()) {
    StrategyResult SR = applyStrategy(G, S);
    ASSERT_TRUE(isValidPartition(SR.Partition))
        << getStrategyName(S) << "\n" << P->str();
    auto LP = scalarize::scalarize(G, SR);
    std::string Why;
    ASSERT_TRUE(resultsMatch(BaseRes, run(LP, RunSeed), 0.0, &Why))
        << getStrategyName(S) << " sequential diverged: " << Why << "\n"
        << P->str();
    ASSERT_TRUE(
        resultsMatch(BaseRes, runParallel(LP, RunSeed, Opts), 0.0, &Why))
        << getStrategyName(S) << " parallel (" << Opts.NumThreads
        << " threads) diverged: " << Why << "\n"
        << P->str();
  }

  // Partial contraction (rolling buffers), sequential and parallel.
  {
    auto LP = scalarize::scalarizeWithPartialContraction(
        G, Strategy::C2, SequentialDims::dims({0, 1}));
    std::string Why;
    ASSERT_TRUE(resultsMatch(BaseRes, run(LP, RunSeed), 0.0, &Why))
        << "partial contraction diverged: " << Why << "\n" << P->str();
    ASSERT_TRUE(
        resultsMatch(BaseRes, runParallel(LP, RunSeed, Opts), 0.0, &Why))
        << "partial contraction parallel diverged: " << Why << "\n"
        << P->str();
  }
}

// The same sweep through the native JIT backend. A strategy subset keeps
// the number of distinct kernels (hence compiler invocations on a cold
// cache) bounded; the process-wide engine honors $ALF_JIT_CACHE_DIR, so
// CI reruns hit the disk cache and compile nothing.
TEST_P(StressSweepTest, NativeJitAgrees) {
  if (!JitEngine::compilerAvailable())
    GTEST_SKIP() << "no usable system C compiler";

  uint64_t Seed = GetParam();
  GeneratorConfig Cfg = sweepConfig(Seed);
  auto P = generateRandomProgram(Cfg);
  normalizeProgram(*P);
  ASSERT_TRUE(isWellFormed(*P)) << P->str();
  ASDG G = ASDG::build(*P);

  uint64_t RunSeed = Seed ^ 0xfeed;
  auto Base = scalarize::scalarizeWithStrategy(G, Strategy::Baseline);
  RunResult BaseRes = run(Base, RunSeed);

  for (Strategy S : {Strategy::Baseline, Strategy::C2, Strategy::C2F3}) {
    auto LP = scalarize::scalarizeWithStrategy(G, S);
    JitRunInfo Info;
    RunResult JitRes = runNativeJit(LP, RunSeed, &Info);
    ASSERT_TRUE(Info.UsedJit)
        << getStrategyName(S)
        << " fell back to the interpreter: " << Info.FallbackReason << "\n"
        << P->str();
    std::string Why;
    ASSERT_TRUE(resultsMatch(BaseRes, JitRes, 0.0, &Why))
        << getStrategyName(S) << " jit diverged: " << Why << "\n"
        << P->str();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, StressSweepTest,
                         ::testing::Range<uint64_t>(1, 51));

} // namespace

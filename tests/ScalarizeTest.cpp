//===- tests/ScalarizeTest.cpp - Scalarization tests ------------------------===//

#include "scalarize/Scalarize.h"

#include "ir/Normalize.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

using namespace alf;
using namespace alf::analysis;
using namespace alf::ir;
using namespace alf::lir;
using namespace alf::scalarize;
using namespace alf::xform;

namespace {

unsigned countLoopNests(const LoopProgram &LP) {
  unsigned Count = 0;
  for (const auto &N : LP.nodes())
    if (isa<LoopNest>(N.get()))
      ++Count;
  return Count;
}

TEST(ScalarizeTest, BaselineOneNestPerStatement) {
  auto P = tp::makeFigure2();
  ASDG G = ASDG::build(*P);
  LoopProgram LP = scalarizeWithStrategy(G, Strategy::Baseline);
  EXPECT_EQ(countLoopNests(LP), 3u);
  EXPECT_TRUE(LP.allocatedArrays().size() == 3u);
}

TEST(ScalarizeTest, UserTempPairBecomesOneNestWithScalar) {
  auto P = tp::makeUserTempPair();
  ASDG G = ASDG::build(*P);
  LoopProgram LP = scalarizeWithStrategy(G, Strategy::C2);
  ASSERT_EQ(countLoopNests(LP), 1u);
  const auto *Nest = cast<LoopNest>(LP.nodes().front().get());
  ASSERT_EQ(Nest->Body.size(), 2u);
  // First statement assigns the contracted scalar, second reads it.
  EXPECT_TRUE(Nest->Body[0].LHS.isScalar());
  EXPECT_EQ(Nest->Body[0].LHS.Scalar->getName(), "s_B");
  EXPECT_FALSE(Nest->Body[1].LHS.isScalar());
  EXPECT_EQ(Nest->Body[1].RHS->str(), "s_B");
  // B no longer requires storage.
  const auto *B = cast<ArraySymbol>(P->findSymbol("B"));
  EXPECT_TRUE(LP.isContracted(B));
  EXPECT_EQ(LP.allocatedArrays().size(), 2u);
}

TEST(ScalarizeTest, StatementsOrderedByDependences) {
  auto P = tp::makeTomcatvFragment();
  normalizeProgram(*P);
  ASDG G = ASDG::build(*P);
  LoopProgram LP = scalarizeWithStrategy(G, Strategy::C2);
  // All six statements fuse into one nest; the R definition must precede
  // every consumer of s_R.
  ASSERT_EQ(countLoopNests(LP), 1u);
  const auto *Nest = cast<LoopNest>(LP.nodes().front().get());
  ASSERT_EQ(Nest->Body.size(), 6u);
  bool SeenRDef = false;
  for (const ScalarStmt &S : Nest->Body) {
    bool ReadsR = S.RHS->str().find("s_R") != std::string::npos;
    if (S.LHS.isScalar() && S.LHS.Scalar->getName() == "s_R") {
      SeenRDef = true;
    } else if (ReadsR) {
      EXPECT_TRUE(SeenRDef) << "use of s_R before its definition";
    }
  }
  EXPECT_TRUE(SeenRDef);
}

TEST(ScalarizeTest, ReversedLoopForAntiDependence) {
  // A := A@(-1,0) + A@(-1,0): after normalization the fused pair carries
  // anti UDV (-1,0), so scalarization must emit a reversed outer loop
  // (the paper's loop reversal during collective fusion).
  Program P("frag4");
  const Region *R = P.regionFromExtents({8, 8});
  ArraySymbol *A = P.makeArray("A", 2);
  P.assign(R, A, add(aref(A, {-1, 0}), aref(A, {-1, 0})));
  normalizeProgram(P);
  ASDG G = ASDG::build(P);
  LoopProgram LP = scalarizeWithStrategy(G, Strategy::C2);
  ASSERT_EQ(countLoopNests(LP), 1u);
  const auto *Nest = cast<LoopNest>(LP.nodes().front().get());
  EXPECT_EQ(Nest->LSV, LoopStructureVector({-1, 2}));
  // The compiler temporary is contracted.
  EXPECT_EQ(LP.allocatedArrays().size(), 1u);
}

TEST(ScalarizeTest, CommAndOpaqueNodesPreserved) {
  Program P("mixed");
  const Region *R = P.regionFromExtents({8});
  ArraySymbol *A = P.makeArray("A", 1);
  ArraySymbol *B = P.makeArray("B", 1);
  P.assign(R, A, aref(B));
  P.comm(A, Offset({1}));
  P.assign(R, B, aref(A, {1}));
  P.opaque("checksum", R, {B}, {});
  ASDG G = ASDG::build(P);
  LoopProgram LP = scalarizeWithStrategy(G, Strategy::C2F3);
  ASSERT_EQ(LP.nodes().size(), 4u);
  EXPECT_TRUE(isa<LoopNest>(LP.nodes()[0].get()));
  EXPECT_TRUE(isa<CommOp>(LP.nodes()[1].get()));
  EXPECT_TRUE(isa<LoopNest>(LP.nodes()[2].get()));
  EXPECT_TRUE(isa<OpaqueOp>(LP.nodes()[3].get()));
}

TEST(ScalarizeTest, PrinterEmitsCLikeLoops) {
  auto P = tp::makeUserTempPair();
  ASDG G = ASDG::build(*P);
  LoopProgram LP = scalarizeWithStrategy(G, Strategy::C2);
  std::string Text = LP.str();
  EXPECT_NE(Text.find("for (i1 = 1; i1 <= 16; ++i1)"), std::string::npos);
  EXPECT_NE(Text.find("s_B = (A[i1][i2] + A[i1][i2]);"), std::string::npos);
  EXPECT_NE(Text.find("C[i1][i2] = s_B;"), std::string::npos);
}

TEST(ScalarizeTest, NestOrderRespectsInterClusterDeps) {
  // Producer cluster must precede consumer cluster even when fusion keeps
  // them apart (different regions).
  Program P("order");
  const Region *R1 = P.regionFromExtents({8});
  const Region *R2 = P.regionFromExtents({6});
  ArraySymbol *A = P.makeArray("A", 1);
  ArraySymbol *B = P.makeArray("B", 1);
  ArraySymbol *C = P.makeArray("C", 1);
  P.assign(R1, B, aref(A));
  P.assign(R2, C, aref(B));
  ASDG G = ASDG::build(P);
  LoopProgram LP = scalarizeWithStrategy(G, Strategy::C2F4);
  ASSERT_EQ(countLoopNests(LP), 2u);
  const auto *First = cast<LoopNest>(LP.nodes()[0].get());
  EXPECT_EQ(First->Body.front().SrcStmtId, 0u);
}

} // namespace

//===- tests/ObsTest.cpp - Observability subsystem tests ---------------------===//
//
// Pins the obs subsystem's external contracts: the Chrome trace_event
// JSON schema (event names, ph/ts/tid fields and the exact empty-trace
// serialization), well-formed span nesting, the aggregated metrics
// table, and — the zero-cost-when-off guarantee — that a full pipeline
// run at ObsLevel::Off records nothing at all.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "frontend/Parser.h"
#include "obs/Obs.h"
#include "support/Json.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

using namespace alf;

namespace {

const char *JacobiSource = R"(
region R : [1..12, 1..12];
array U, Unew : R;
array Res : R temp;
scalar maxres;

[R] Res  := (U@(-1,0) + U@(1,0) + U@(0,-1) + U@(0,1)) * 0.25 - U;
[R] Unew := U + Res * 0.8;
[R] maxres := max << abs(Res);
)";

std::unique_ptr<ir::Program> parseJacobi() {
  frontend::ParseResult R = frontend::parseProgram(JacobiSource, "<test>");
  EXPECT_TRUE(R.succeeded());
  return std::move(R.Prog);
}

/// Runs the whole pipeline (compile + execute) once.
exec::RunResult runPipelineOnce(xform::ExecMode Mode) {
  auto P = parseJacobi();
  driver::Pipeline PL(*P, driver::PipelineOptions());
  return PL.run(xform::Strategy::C2F3, Mode, 7);
}

class ObsTest : public ::testing::Test {
protected:
  void SetUp() override { obs::reset(); }
  void TearDown() override { obs::reset(); }
};

//===----------------------------------------------------------------------===//
// Levels
//===----------------------------------------------------------------------===//

TEST_F(ObsTest, LevelNamesRoundTrip) {
  for (obs::ObsLevel L : {obs::ObsLevel::Off, obs::ObsLevel::Counters,
                          obs::ObsLevel::Trace})
    EXPECT_EQ(obs::obsLevelNamed(obs::getObsLevelName(L)), L);
  EXPECT_FALSE(obs::obsLevelNamed("verbose").has_value());
}

TEST_F(ObsTest, ScopedLevelRestores) {
  obs::ObsLevel Before = obs::level();
  {
    obs::ScopedLevel Scoped(obs::ObsLevel::Trace);
    EXPECT_EQ(obs::level(), obs::ObsLevel::Trace);
  }
  EXPECT_EQ(obs::level(), Before);
}

//===----------------------------------------------------------------------===//
// ObsLevel::Off records nothing (zero-cost-when-off contract)
//===----------------------------------------------------------------------===//

TEST_F(ObsTest, OffRecordsZeroEventsAcrossFullPipelineRun) {
  obs::ScopedLevel Scoped(obs::ObsLevel::Off);
  runPipelineOnce(xform::ExecMode::Sequential);
  runPipelineOnce(xform::ExecMode::Parallel);
  EXPECT_EQ(obs::numTraceEvents(), 0u);
  EXPECT_TRUE(obs::metricsTable().empty());
  EXPECT_EQ(obs::numDroppedEvents(), 0u);
}

TEST_F(ObsTest, OffSpanIsInert) {
  obs::ScopedLevel Scoped(obs::ObsLevel::Off);
  obs::Span S("test.span");
  EXPECT_FALSE(S.active());
}

TEST_F(ObsTest, CountersAggregatesWithoutStoringEvents) {
  obs::ScopedLevel Scoped(obs::ObsLevel::Counters);
  runPipelineOnce(xform::ExecMode::Sequential);
  EXPECT_EQ(obs::numTraceEvents(), 0u) << "Counters must not store events";
  EXPECT_FALSE(obs::metricsTable().empty());
  EXPECT_TRUE(obs::metricsFor("pipeline.execute").has_value());
}

//===----------------------------------------------------------------------===//
// Golden: Chrome trace JSON schema
//===----------------------------------------------------------------------===//

TEST_F(ObsTest, EmptyTraceGolden) {
  std::ostringstream OS;
  obs::writeChromeTrace(OS);
  // Golden-pinned: the exact serialization of an empty trace. A change
  // here is a format break every stored trace consumer will see.
  EXPECT_EQ(OS.str(), "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n]}\n");
}

TEST_F(ObsTest, ChromeTraceSchemaGolden) {
  {
    obs::ScopedLevel Scoped(obs::ObsLevel::Trace);
    runPipelineOnce(xform::ExecMode::Sequential);
    obs::instant("test.marker", "detail text");
  }
  std::ostringstream OS;
  obs::writeChromeTrace(OS);

  std::string Error;
  std::optional<json::Value> Root = json::parse(OS.str(), &Error);
  ASSERT_TRUE(Root.has_value()) << "trace is not valid JSON: " << Error;

  // Top-level object layout.
  ASSERT_TRUE(Root->isObject());
  EXPECT_EQ(Root->getString("displayTimeUnit").value_or(""), "ms");
  const json::Value *Events = Root->get("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_TRUE(Events->isArray());
  ASSERT_GT(Events->size(), 0u);

  // Per-event schema: names, ph/ts/tid fields and types.
  std::map<std::string, unsigned> NameCounts;
  for (const json::Value &E : Events->items()) {
    ASSERT_TRUE(E.isObject());
    ASSERT_TRUE(E.getString("name").has_value());
    EXPECT_EQ(E.getString("cat").value_or(""), "alf");
    std::string Ph = E.getString("ph").value_or("");
    EXPECT_TRUE(Ph == "X" || Ph == "i") << "unexpected phase " << Ph;
    ASSERT_TRUE(E.getNumber("ts").has_value());
    EXPECT_GE(*E.getNumber("ts"), 0.0);
    ASSERT_TRUE(E.getNumber("dur").has_value());
    EXPECT_EQ(E.getNumber("pid").value_or(-1), 1.0);
    ASSERT_TRUE(E.getNumber("tid").has_value());
    const json::Value *Args = E.get("args");
    ASSERT_NE(Args, nullptr);
    ASSERT_TRUE(Args->getNumber("depth").has_value());
    if (Ph == "i") {
      EXPECT_EQ(E.getNumber("dur").value_or(-1), 0.0);
      EXPECT_EQ(E.getString("s").value_or(""), "t");
    }
    ++NameCounts[*E.getString("name")];
  }

  // The pinned event names a sequential pipeline run must produce.
  for (const char *Required :
       {"pipeline.normalize", "pipeline.asdg", "pipeline.strategy",
        "pipeline.scalarize", "pipeline.execute", "exec.interpreter",
        "kernel.nest0", "test.marker"})
    EXPECT_TRUE(NameCounts.count(Required))
        << "missing required event " << Required;
  // ALF_VERIFY=full is exported by ctest, so verification spans fire too.
  EXPECT_TRUE(NameCounts.count("pipeline.verify"));
}

TEST_F(ObsTest, TraceFileIsChromeLoadable) {
  {
    obs::ScopedLevel Scoped(obs::ObsLevel::Trace);
    runPipelineOnce(xform::ExecMode::Sequential);
  }
  std::string Path = ::testing::TempDir() + "/alf_obs_test_trace.json";
  ASSERT_TRUE(obs::writeChromeTraceFile(Path));
  std::ifstream In(Path);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Error;
  EXPECT_TRUE(json::parse(Buf.str(), &Error).has_value()) << Error;
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Span nesting
//===----------------------------------------------------------------------===//

TEST_F(ObsTest, SpanNestingWellFormed) {
  {
    obs::ScopedLevel Scoped(obs::ObsLevel::Trace);
    runPipelineOnce(xform::ExecMode::Sequential);
  }
  std::vector<obs::TraceEvent> Events = obs::traceEvents();
  ASSERT_FALSE(Events.empty());

  // Per thread, replay the complete ('X') events as an interval forest:
  // a child (greater depth) must lie within its parent's [start, end],
  // and depths may only grow one level at a time downward.
  std::map<unsigned, std::vector<const obs::TraceEvent *>> PerThread;
  for (const obs::TraceEvent &E : Events)
    if (E.Ph == 'X')
      PerThread[E.Tid].push_back(&E);

  for (auto &[Tid, Tev] : PerThread) {
    // Events are recorded at span *end*; sort by start for the replay.
    std::sort(Tev.begin(), Tev.end(),
              [](const obs::TraceEvent *A, const obs::TraceEvent *B) {
                if (A->StartNs != B->StartNs)
                  return A->StartNs < B->StartNs;
                return A->Depth < B->Depth;
              });
    std::vector<const obs::TraceEvent *> Stack;
    for (const obs::TraceEvent *E : Tev) {
      while (!Stack.empty() &&
             E->StartNs >= Stack.back()->StartNs + Stack.back()->DurNs)
        Stack.pop_back();
      EXPECT_EQ(E->Depth, Stack.size())
          << "event " << E->Name << " depth disagrees with its enclosing "
          << "spans on tid " << Tid;
      if (!Stack.empty()) {
        EXPECT_GE(E->StartNs, Stack.back()->StartNs);
        EXPECT_LE(E->StartNs + E->DurNs,
                  Stack.back()->StartNs + Stack.back()->DurNs)
            << "event " << E->Name << " escapes its parent "
            << Stack.back()->Name;
      }
      Stack.push_back(E);
    }
  }
}

TEST_F(ObsTest, InstantEventsCarryThreadDepth) {
  obs::ScopedLevel Scoped(obs::ObsLevel::Trace);
  {
    obs::Span Outer("test.outer");
    obs::instant("test.inner_mark");
  }
  std::vector<obs::TraceEvent> Events = obs::traceEvents();
  ASSERT_EQ(Events.size(), 2u);
  // The instant fires inside the span, so it records the deeper depth;
  // the span records its own (outer) depth.
  const obs::TraceEvent &Mark = Events[0];
  const obs::TraceEvent &Span = Events[1];
  EXPECT_STREQ(Mark.Name, "test.inner_mark");
  EXPECT_EQ(Mark.Ph, 'i');
  EXPECT_STREQ(Span.Name, "test.outer");
  EXPECT_EQ(Span.Ph, 'X');
  EXPECT_EQ(Mark.Depth, Span.Depth + 1);
  EXPECT_EQ(Mark.Tid, Span.Tid);
}

TEST_F(ObsTest, ThreadsGetDistinctTids) {
  obs::ScopedLevel Scoped(obs::ObsLevel::Trace);
  {
    obs::Span Main("test.main_thread");
    std::thread T([] { obs::Span Worker("test.worker_thread"); });
    T.join();
  }
  std::vector<obs::TraceEvent> Events = obs::traceEvents();
  ASSERT_EQ(Events.size(), 2u);
  EXPECT_NE(Events[0].Tid, Events[1].Tid);
}

//===----------------------------------------------------------------------===//
// Metrics table
//===----------------------------------------------------------------------===//

TEST_F(ObsTest, MetricsAggregateCountsTotalsAndBytes) {
  obs::ScopedLevel Scoped(obs::ObsLevel::Counters);
  for (int I = 0; I < 5; ++I) {
    obs::Span S("test.repeated");
    S.setBytes(100);
  }
  std::optional<obs::MetricRow> Row = obs::metricsFor("test.repeated");
  ASSERT_TRUE(Row.has_value());
  EXPECT_EQ(Row->Count, 5u);
  EXPECT_EQ(Row->Bytes, 500u);
  EXPECT_GE(Row->TotalNs, Row->MaxNs);
  EXPECT_LE(Row->P50Ns, Row->P95Ns);
  EXPECT_LE(Row->P95Ns, Row->MaxNs);
}

TEST_F(ObsTest, MetricsTableSortedByName) {
  obs::ScopedLevel Scoped(obs::ObsLevel::Counters);
  { obs::Span S("test.zebra"); }
  { obs::Span S("test.aardvark"); }
  { obs::Span S("test.middle"); }
  std::vector<obs::MetricRow> Rows = obs::metricsTable();
  ASSERT_GE(Rows.size(), 3u);
  EXPECT_TRUE(std::is_sorted(
      Rows.begin(), Rows.end(),
      [](const obs::MetricRow &A, const obs::MetricRow &B) {
        return A.Name < B.Name;
      }));
}

TEST_F(ObsTest, ResetClearsEverything) {
  {
    obs::ScopedLevel Scoped(obs::ObsLevel::Trace);
    obs::Span S("test.span");
  }
  EXPECT_GT(obs::numTraceEvents(), 0u);
  obs::reset();
  EXPECT_EQ(obs::numTraceEvents(), 0u);
  EXPECT_TRUE(obs::metricsTable().empty());
}

} // namespace

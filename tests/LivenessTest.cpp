//===- tests/LivenessTest.cpp - Liveness and footprint tests ----------------===//

#include "analysis/Footprint.h"
#include "analysis/Liveness.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

using namespace alf;
using namespace alf::analysis;
using namespace alf::ir;

namespace {

TEST(LivenessTest, UserTempPairPeak) {
  auto P = tp::makeUserTempPair();
  LivenessInfo LI = LivenessInfo::compute(*P);
  // A, B, C all live at S0..S1 boundary: A live-in/out, C live-out (from
  // position 0 because live-in), B from S0 to S1.
  EXPECT_EQ(LI.peakLive(), 3u);
  // Filtering out B (as contraction would) drops the peak.
  EXPECT_EQ(LI.peakLive([](const ArraySymbol *A) {
              return A->getName() != "B";
            }),
            2u);
}

TEST(LivenessTest, TempIntervalSpansDefToLastUse) {
  Program P("t");
  const Region *R = P.regionFromExtents({8});
  ArraySymbol *A = P.makeArray("A", 1);
  ArraySymbol *T = P.makeUserTemp("T", 1);
  ArraySymbol *B = P.makeArray("B", 1);
  ArraySymbol *C = P.makeArray("C", 1);
  P.assign(R, B, aref(A));  // S0: T not yet live
  P.assign(R, T, aref(A));  // S1: T born
  P.assign(R, C, aref(T));  // S2: T last use
  P.assign(R, B, aref(A));  // S3: T dead
  LivenessInfo LI = LivenessInfo::compute(P);
  const LiveInterval *TI = nullptr;
  for (const LiveInterval &I : LI.intervals())
    if (I.Array == T)
      TI = &I;
  ASSERT_NE(TI, nullptr);
  EXPECT_EQ(TI->First, 1u);
  EXPECT_EQ(TI->Last, 2u);
}

TEST(LivenessTest, DisjointPhasesDoNotStack) {
  // Two temporaries with disjoint live ranges: peak counts only one of
  // them at a time.
  Program P("phases");
  const Region *R = P.regionFromExtents({8});
  ArraySymbol *A = P.makeArray("A", 1);
  ArraySymbol *T1 = P.makeUserTemp("T1", 1);
  ArraySymbol *T2 = P.makeUserTemp("T2", 1);
  P.assign(R, T1, aref(A));
  P.assign(R, A, aref(T1));
  P.assign(R, T2, aref(A));
  P.assign(R, A, aref(T2));
  LivenessInfo LI = LivenessInfo::compute(P);
  EXPECT_EQ(LI.peakLive(), 2u); // A plus one temp
}

TEST(FootprintTest, HaloExtendsBounds) {
  Program P("halo");
  const Region *R = P.regionFromExtents({8, 8});
  ArraySymbol *A = P.makeArray("A", 2);
  ArraySymbol *B = P.makeArray("B", 2);
  P.assign(R, B, add(aref(A, {-1, 0}), aref(A, {0, 2})));
  FootprintInfo FI = FootprintInfo::compute(P);
  const Region *BA = FI.boundsFor(A);
  ASSERT_NE(BA, nullptr);
  EXPECT_EQ(BA->lo(0), 0);  // shifted by -1
  EXPECT_EQ(BA->hi(0), 8);
  EXPECT_EQ(BA->lo(1), 1);
  EXPECT_EQ(BA->hi(1), 10); // shifted by +2
  const Region *BB = FI.boundsFor(B);
  ASSERT_NE(BB, nullptr);
  EXPECT_EQ(*BB, Region::fromExtents({8, 8}));
}

TEST(FootprintTest, BytesIncludeElementSize) {
  Program P("bytes");
  const Region *R = P.regionFromExtents({4, 4});
  ArraySymbol *A = P.makeArray("A", 2);
  ArraySymbol *B = P.makeArray("B", 2);
  P.assign(R, B, aref(A));
  FootprintInfo FI = FootprintInfo::compute(P);
  EXPECT_EQ(FI.bytesFor(A), 16u * 8u);
  EXPECT_EQ(FI.bytesFor(B), 16u * 8u);
}

TEST(FootprintTest, UnreferencedArrayHasNoFootprint) {
  Program P("unref");
  P.makeArray("Z", 2);
  FootprintInfo FI = FootprintInfo::compute(P);
  EXPECT_EQ(FI.boundsFor(cast<ArraySymbol>(P.findSymbol("Z"))), nullptr);
  EXPECT_EQ(FI.bytesFor(cast<ArraySymbol>(P.findSymbol("Z"))), 0u);
}

} // namespace

//===- tests/CacheSimTest.cpp - Cache simulator tests -----------------------===//

#include "machine/CacheSim.h"
#include "machine/Machine.h"

#include <gtest/gtest.h>

using namespace alf::machine;

namespace {

TEST(CacheSimTest, ColdMissThenHit) {
  CacheSim C(CacheConfig{1024, 32, 1});
  EXPECT_FALSE(C.access(0));
  EXPECT_TRUE(C.access(8));  // same line
  EXPECT_TRUE(C.access(0));
  EXPECT_FALSE(C.access(32)); // next line
  EXPECT_EQ(C.accesses(), 4u);
  EXPECT_EQ(C.misses(), 2u);
  EXPECT_EQ(C.hits(), 2u);
}

TEST(CacheSimTest, DirectMappedConflict) {
  // 1024-byte direct-mapped, 32-byte lines: 32 sets. Addresses 0 and
  // 1024 map to the same set and evict each other.
  CacheSim C(CacheConfig{1024, 32, 1});
  C.access(0);
  C.access(1024);
  EXPECT_FALSE(C.access(0));
  EXPECT_FALSE(C.access(1024));
  EXPECT_EQ(C.misses(), 4u);
}

TEST(CacheSimTest, TwoWayAvoidsPairConflict) {
  CacheSim C(CacheConfig{1024, 32, 2});
  C.access(0);
  C.access(1024); // same set, second way
  EXPECT_TRUE(C.access(0));
  EXPECT_TRUE(C.access(1024));
}

TEST(CacheSimTest, LRUReplacement) {
  CacheSim C(CacheConfig{64, 32, 2}); // one set, two ways
  C.access(0);    // miss: line 0
  C.access(32);   // miss: line 1
  C.access(0);    // hit: line 0 now MRU
  C.access(64);   // miss: evicts line 1 (LRU)
  EXPECT_TRUE(C.access(0));
  EXPECT_FALSE(C.access(32));
}

TEST(CacheSimTest, CapacityEviction) {
  // Streaming through 2x the cache size misses every line on a re-walk.
  CacheSim C(CacheConfig{1024, 32, 4});
  for (uint64_t A = 0; A < 2048; A += 32)
    C.access(A);
  uint64_t MissesBefore = C.misses();
  for (uint64_t A = 0; A < 2048; A += 32)
    C.access(A);
  EXPECT_EQ(C.misses() - MissesBefore, 64u); // all miss again (LRU)
}

TEST(CacheSimTest, ResetClearsState) {
  CacheSim C(CacheConfig{1024, 32, 1});
  C.access(0);
  C.reset();
  EXPECT_EQ(C.accesses(), 0u);
  EXPECT_FALSE(C.access(0)); // cold again
}

TEST(CacheSimTest, MissRatio) {
  CacheSim C(CacheConfig{1024, 32, 1});
  EXPECT_DOUBLE_EQ(C.missRatio(), 0.0);
  C.access(0);
  C.access(0);
  EXPECT_DOUBLE_EQ(C.missRatio(), 0.5);
}

TEST(MemoryHierarchyTest, L2CatchesL1Misses) {
  MemoryHierarchy H(CacheConfig{64, 32, 1}, CacheConfig{1024, 32, 4});
  EXPECT_EQ(H.access(0), MemoryHierarchy::Level::Memory);
  EXPECT_EQ(H.access(0), MemoryHierarchy::Level::L1);
  // Evict from L1 (same set), keep in L2.
  H.access(64);
  H.access(128);
  EXPECT_EQ(H.access(0), MemoryHierarchy::Level::L2);
}

TEST(MemoryHierarchyTest, WithoutL2MissesGoToMemory) {
  MemoryHierarchy H(CacheConfig{64, 32, 1});
  EXPECT_FALSE(H.hasL2());
  EXPECT_EQ(H.access(0), MemoryHierarchy::Level::Memory);
  H.access(64);
  EXPECT_EQ(H.access(0), MemoryHierarchy::Level::Memory);
}

TEST(MachineDescTest, ThreeMachines) {
  auto Machines = allMachines();
  ASSERT_EQ(Machines.size(), 3u);
  EXPECT_EQ(Machines[0].Name, "Cray T3E");
  EXPECT_TRUE(Machines[0].L2.has_value());   // 96 KB L2
  EXPECT_EQ(Machines[1].Name, "IBM SP-2");
  EXPECT_FALSE(Machines[1].L2.has_value());
  EXPECT_EQ(Machines[1].L1.SizeBytes, 128u * 1024u);
  EXPECT_EQ(Machines[2].Name, "Intel Paragon");
  EXPECT_EQ(Machines[2].L1.SizeBytes, 8u * 1024u);
}

TEST(MachineDescTest, MessageCost) {
  MachineDesc M = crayT3E();
  EXPECT_GT(M.messageCost(1024), M.MsgLatency);
  EXPECT_DOUBLE_EQ(M.messageCost(0), M.MsgLatency);
}

TEST(ProcGridTest, SquareFactorizations) {
  EXPECT_EQ(ProcGrid::make(1, 2).Extents, (std::vector<unsigned>{1, 1}));
  EXPECT_EQ(ProcGrid::make(4, 2).Extents, (std::vector<unsigned>{2, 2}));
  EXPECT_EQ(ProcGrid::make(16, 2).Extents, (std::vector<unsigned>{4, 4}));
  EXPECT_EQ(ProcGrid::make(64, 2).Extents, (std::vector<unsigned>{8, 8}));
  EXPECT_EQ(ProcGrid::make(8, 2).Extents, (std::vector<unsigned>{2, 4}));
  EXPECT_EQ(ProcGrid::make(4, 1).Extents, (std::vector<unsigned>{4}));
}

TEST(ProcGridTest, HasNeighbor) {
  ProcGrid G = ProcGrid::make(4, 2);
  EXPECT_TRUE(G.hasNeighbor(0));
  EXPECT_TRUE(G.hasNeighbor(1));
  ProcGrid Single = ProcGrid::make(1, 2);
  EXPECT_FALSE(Single.hasNeighbor(0));
  EXPECT_FALSE(Single.hasNeighbor(1));
}

} // namespace

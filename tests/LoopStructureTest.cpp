//===- tests/LoopStructureTest.cpp - FIND-LOOP-STRUCTURE tests --------------===//

#include "xform/LoopStructure.h"

#include <gtest/gtest.h>

using namespace alf;
using namespace alf::ir;
using namespace alf::xform;

namespace {

TEST(LoopStructureVectorTest, Identity) {
  LoopStructureVector P = LoopStructureVector::identity(3);
  EXPECT_EQ(P.rank(), 3u);
  for (unsigned I = 0; I < 3; ++I) {
    EXPECT_EQ(P.dimOf(I), I);
    EXPECT_EQ(P.dirOf(I), 1);
  }
  EXPECT_EQ(P.str(), "(1,2,3)");
}

TEST(LoopStructureVectorTest, SignedAccess) {
  LoopStructureVector P({-2, -1});
  EXPECT_EQ(P.dimOf(0), 1u);
  EXPECT_EQ(P.dirOf(0), -1);
  EXPECT_EQ(P.dimOf(1), 0u);
  EXPECT_EQ(P.dirOf(1), -1);
  EXPECT_EQ(P.str(), "(-2,-1)");
}

TEST(ConstrainTest, PaperExample) {
  // Paper section 2.2: with p = (-2,-1), the UDVs (-1,0) and (1,-1)
  // become (0,1) and (1,-1).
  LoopStructureVector P({-2, -1});
  EXPECT_EQ(constrain(Offset({-1, 0}), P), Offset({0, 1}));
  EXPECT_EQ(constrain(Offset({1, -1}), P), Offset({1, -1}));
}

TEST(ConstrainTest, IdentityIsNoOp) {
  LoopStructureVector P = LoopStructureVector::identity(2);
  EXPECT_EQ(constrain(Offset({3, -2}), P), Offset({3, -2}));
}

TEST(LexTest, Nonnegativity) {
  EXPECT_TRUE(isLexicographicallyNonnegative(Offset({0, 0})));
  EXPECT_TRUE(isLexicographicallyNonnegative(Offset({1, -5})));
  EXPECT_TRUE(isLexicographicallyNonnegative(Offset({0, 1})));
  EXPECT_FALSE(isLexicographicallyNonnegative(Offset({-1, 5})));
  EXPECT_FALSE(isLexicographicallyNonnegative(Offset({0, -1})));
}

TEST(FindLoopStructureTest, EmptyConstraintsGiveRowMajorIdentity) {
  auto P = findLoopStructure({}, 2);
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(*P, LoopStructureVector::identity(2));
}

TEST(FindLoopStructureTest, PaperFigure2Example) {
  // Statements 1 and 3 of Figure 2(b): UDVs (-1,0) and (1,-1). The paper
  // scalarizes them with p = (-2,-1) (Figure 2(c), first nest).
  auto P = findLoopStructure({Offset({-1, 0}), Offset({1, -1})}, 2);
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(*P, LoopStructureVector({-2, -1}));
}

TEST(FindLoopStructureTest, PureAntiDistanceReversesLoop) {
  // A = A@(-1,0) after normalization: anti UDV (-1,0).
  auto P = findLoopStructure({Offset({-1, 0})}, 2);
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(*P, LoopStructureVector({-1, 2}));
}

TEST(FindLoopStructureTest, PositiveDistanceKeepsDirection) {
  auto P = findLoopStructure({Offset({1, 0})}, 2);
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(*P, LoopStructureVector({1, 2}));
}

TEST(FindLoopStructureTest, NoSolutionOnOpposingDistances) {
  // (1,0) and (-1,0) cannot both be carried: dimension 1 has mixed signs
  // and dimension 2 never carries them.
  auto P = findLoopStructure({Offset({1, 0}), Offset({-1, 0})}, 2);
  EXPECT_FALSE(P.has_value());
}

TEST(FindLoopStructureTest, MixedDimensionsResolvedByOuterLoop) {
  // (1,-1): carried by dimension 1 increasing; dimension 2's -1 is then
  // irrelevant.
  auto P = findLoopStructure({Offset({1, -1})}, 2);
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(*P, LoopStructureVector({1, 2}));
}

TEST(FindLoopStructureTest, PrefersLowDimensionOutermost) {
  // Unconstrained in dimension 1, constrained in dimension 2: dimension 1
  // is still assigned to the outer loop (considered first), giving inner
  // loops the higher dimensions for spatial locality.
  auto P = findLoopStructure({Offset({0, 1})}, 2);
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(*P, LoopStructureVector({1, 2}));
}

TEST(FindLoopStructureTest, SecondDimensionReversed) {
  auto P = findLoopStructure({Offset({0, -2})}, 2);
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(*P, LoopStructureVector({1, -2}));
}

TEST(FindLoopStructureTest, RankThree) {
  auto P = findLoopStructure(
      {Offset({0, -1, 0}), Offset({1, 0, 0}), Offset({0, 0, 2})}, 3);
  ASSERT_TRUE(P.has_value());
  // dim1 mixed? u1 values: 0,1,0 -> all >= 0 -> +1 carries (1,0,0); then
  // remaining {(0,-1,0),(0,0,2)}: dim2 values 0,-1? after prune of (1,0,0):
  // constraints (0,-1,0) and (0,0,2): dim2: -1,0 -> all <= 0 & exists <0 ->
  // -2 carries (0,-1,0); remaining (0,0,2): dim3 +3.
  EXPECT_EQ(*P, LoopStructureVector({1, -2, 3}));
}

/// Property sweep: for every found loop structure vector, every input UDV
/// must constrain to a lexicographically nonnegative distance vector
/// (Definition 1 legality).
class FindLoopStructureProperty
    : public ::testing::TestWithParam<std::vector<Offset>> {};

TEST_P(FindLoopStructureProperty, FoundVectorsPreserveAllDependences) {
  const auto &UDVs = GetParam();
  auto P = findLoopStructure(UDVs, 2);
  if (!P.has_value())
    GTEST_SKIP() << "no legal loop structure for this set";
  for (const Offset &U : UDVs)
    EXPECT_TRUE(isLexicographicallyNonnegative(constrain(U, *P)))
        << "UDV " << U.str() << " violated by p = " << P->str();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FindLoopStructureProperty,
    ::testing::Values(
        std::vector<Offset>{},
        std::vector<Offset>{Offset({0, 0})},
        std::vector<Offset>{Offset({-1, 0})},
        std::vector<Offset>{Offset({1, 0})},
        std::vector<Offset>{Offset({0, -1})},
        std::vector<Offset>{Offset({-1, 0}), Offset({1, -1})},
        std::vector<Offset>{Offset({1, 1}), Offset({1, -1})},
        std::vector<Offset>{Offset({-1, -1}), Offset({-1, 1})},
        std::vector<Offset>{Offset({0, 1}), Offset({0, 2}), Offset({1, 0})},
        std::vector<Offset>{Offset({-2, 0}), Offset({-1, 3})},
        std::vector<Offset>{Offset({2, -1}), Offset({0, -1})},
        std::vector<Offset>{Offset({1, 0}), Offset({-1, 0})}));

} // namespace

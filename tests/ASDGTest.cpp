//===- tests/ASDGTest.cpp - Dependence graph tests --------------------------===//

#include "analysis/ASDG.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace alf;
using namespace alf::analysis;
using namespace alf::ir;

namespace {

/// Finds the edge Src->Tgt; null when absent.
const DepEdge *findEdge(const ASDG &G, unsigned Src, unsigned Tgt) {
  for (const DepEdge &E : G.edges())
    if (E.Src == Src && E.Tgt == Tgt)
      return &E;
  return nullptr;
}

bool hasLabel(const DepEdge &E, const std::string &Var, DepType T,
              std::optional<Offset> UDV) {
  for (const DepLabel &L : E.Labels)
    if (L.Var->getName() == Var && L.Type == T && L.UDV == UDV)
      return true;
  return false;
}

TEST(ASDGTest, Figure2UDVsMatchPaper) {
  auto P = tp::makeFigure2();
  ASDG G = ASDG::build(*P);
  EXPECT_EQ(G.numNodes(), 3u);

  // Paper section 2.2: "the unconstrained distance vectors that arise from
  // the dependences in the code in Figure 2(b) are (0,1) and (1,-1) for
  // array A and (-1,0) for array B."
  const DepEdge *E01 = findEdge(G, 0, 1);
  ASSERT_NE(E01, nullptr);
  EXPECT_TRUE(hasLabel(*E01, "A", DepType::Flow, Offset({0, 1})));

  const DepEdge *E02 = findEdge(G, 0, 2);
  ASSERT_NE(E02, nullptr);
  EXPECT_TRUE(hasLabel(*E02, "A", DepType::Flow, Offset({1, -1})));
  EXPECT_TRUE(hasLabel(*E02, "B", DepType::Anti, Offset({-1, 0})));

  // No dependence between statements 2 and 3 ("there are no constraints on
  // the structure of the second loop nest").
  EXPECT_EQ(findEdge(G, 1, 2), nullptr);
}

TEST(ASDGTest, OutputDependence) {
  Program P("t");
  const Region *R = P.regionFromExtents({8});
  ArraySymbol *A = P.makeArray("A", 1);
  ArraySymbol *B = P.makeArray("B", 1);
  P.assign(R, A, aref(B));
  P.assign(R, A, Offset({1}), aref(B, {1}));
  ASDG G = ASDG::build(P);
  const DepEdge *E = findEdge(G, 0, 1);
  ASSERT_NE(E, nullptr);
  EXPECT_TRUE(hasLabel(*E, "A", DepType::Output, Offset({-1})));
}

TEST(ASDGTest, ReadReadIsNotADependence) {
  Program P("t");
  const Region *R = P.regionFromExtents({8});
  ArraySymbol *A = P.makeArray("A", 1);
  ArraySymbol *B = P.makeArray("B", 1);
  ArraySymbol *C = P.makeArray("C", 1);
  P.assign(R, B, aref(A));
  P.assign(R, C, aref(A, {1}));
  ASDG G = ASDG::build(P);
  EXPECT_EQ(G.numEdges(), 0u);
}

TEST(ASDGTest, MultipleLabelsDeduplicated) {
  Program P("t");
  const Region *R = P.regionFromExtents({8});
  ArraySymbol *A = P.makeArray("A", 1);
  ArraySymbol *B = P.makeArray("B", 1);
  P.assign(R, A, aref(B));
  // Two identical reads at the same offset: one label only.
  P.assign(R, B, add(aref(A), aref(A)));
  ASDG G = ASDG::build(P);
  const DepEdge *E = findEdge(G, 0, 1);
  ASSERT_NE(E, nullptr);
  unsigned FlowCount = 0;
  for (const DepLabel &L : E->Labels)
    if (L.Type == DepType::Flow)
      ++FlowCount;
  EXPECT_EQ(FlowCount, 1u);
}

TEST(ASDGTest, OpaqueAccessesAreUnrepresentable) {
  Program P("t");
  const Region *R = P.regionFromExtents({8});
  ArraySymbol *A = P.makeArray("A", 1);
  ArraySymbol *B = P.makeArray("B", 1);
  P.assign(R, A, aref(B));
  P.opaque("scan", R, {A}, {B});
  ASDG G = ASDG::build(P);
  const DepEdge *E = findEdge(G, 0, 1);
  ASSERT_NE(E, nullptr);
  // Flow on A with unknown distance and anti on B with unknown distance.
  EXPECT_TRUE(hasLabel(*E, "A", DepType::Flow, std::nullopt));
  EXPECT_TRUE(hasLabel(*E, "B", DepType::Anti, std::nullopt));
}

TEST(ASDGTest, CommStmtOrdersProducersAndConsumers) {
  Program P("t");
  const Region *R = P.regionFromExtents({8});
  ArraySymbol *A = P.makeArray("A", 1);
  ArraySymbol *B = P.makeArray("B", 1);
  ArraySymbol *C = P.makeArray("C", 1);
  P.assign(R, A, aref(B));       // S0: produces A
  P.comm(A, Offset({1}));        // S1: exchange A
  P.assign(R, C, aref(A, {1}));  // S2: consumes A's halo
  ASDG G = ASDG::build(P);
  ASSERT_NE(findEdge(G, 0, 1), nullptr);
  ASSERT_NE(findEdge(G, 1, 2), nullptr);
  EXPECT_TRUE(hasLabel(*findEdge(G, 1, 2), "A", DepType::Flow, std::nullopt));
}

TEST(ASDGTest, ReferenceWeightCountsRefsTimesRegionSize) {
  auto P = tp::makeUserTempPair(16); // region 16x16 = 256
  ASDG G = ASDG::build(*P);
  const Symbol *A = P->findSymbol("A");
  const Symbol *B = P->findSymbol("B");
  EXPECT_DOUBLE_EQ(G.referenceWeight(A), 2 * 256.0); // two reads in S0
  EXPECT_DOUBLE_EQ(G.referenceWeight(B), 2 * 256.0); // write + read
}

TEST(ASDGTest, ArraysByDecreasingWeight) {
  Program P("t");
  const Region *R = P.regionFromExtents({4});
  ArraySymbol *A = P.makeArray("A", 1);
  ArraySymbol *B = P.makeArray("B", 1);
  ArraySymbol *C = P.makeArray("C", 1);
  P.assign(R, A, add(aref(B), aref(B)));             // B: 2 refs
  P.assign(R, C, add(add(aref(B), aref(A)), cst(1))); // B: 3, A: 2, C: 1
  ASDG G = ASDG::build(P);
  auto Sorted = G.arraysByDecreasingWeight();
  ASSERT_EQ(Sorted.size(), 3u);
  EXPECT_EQ(Sorted[0]->getName(), "B");
  EXPECT_EQ(Sorted[1]->getName(), "A");
  EXPECT_EQ(Sorted[2]->getName(), "C");
}

TEST(ASDGTest, StatementsReferencing) {
  auto P = tp::makeFigure2();
  ASDG G = ASDG::build(*P);
  auto Refs = G.statementsReferencing(P->findSymbol("A"));
  EXPECT_EQ(Refs, (std::vector<unsigned>{0, 1, 2}));
  auto RefsC = G.statementsReferencing(P->findSymbol("C"));
  EXPECT_EQ(RefsC, (std::vector<unsigned>{1}));
}

TEST(ASDGTest, TransitiveReduction) {
  // T -> U -> V with a direct T -> V dependence: the direct edge is
  // implied by the path and drops out of the reduction.
  Program P("tr");
  const Region *R = P.regionFromExtents({8});
  ArraySymbol *A = P.makeArray("A", 1);
  ArraySymbol *T = P.makeUserTemp("T", 1);
  ArraySymbol *U = P.makeUserTemp("U", 1);
  ArraySymbol *V = P.makeArray("V", 1);
  P.assign(R, T, aref(A));
  P.assign(R, U, aref(T));
  P.assign(R, V, add(aref(U), aref(T)));
  ASDG G = ASDG::build(P);
  EXPECT_EQ(G.numEdges(), 3u);
  auto Reduced = G.transitiveReductionEdges();
  ASSERT_EQ(Reduced.size(), 2u);
  for (unsigned EdgeId : Reduced) {
    const DepEdge &E = G.getEdge(EdgeId);
    EXPECT_FALSE(E.Src == 0 && E.Tgt == 2)
        << "the implied edge S0 -> S2 must be reduced away";
  }
  // Reduced dot output contains fewer arrows.
  EXPECT_LT(G.dot(/*Reduced=*/true).size(), G.dot().size());
}

TEST(ASDGTest, TransitiveReductionKeepsUnimpliedEdges) {
  auto P = tp::makeFigure2();
  ASDG G = ASDG::build(*P);
  // Figure 2's two edges are not implied by paths: both survive.
  EXPECT_EQ(G.transitiveReductionEdges().size(), G.numEdges());
}

TEST(ASDGTest, PrintDoesNotCrash) {
  auto P = tp::makeFigure2();
  ASDG G = ASDG::build(*P);
  std::ostringstream OS;
  G.print(OS);
  EXPECT_NE(OS.str().find("S0 -> S1"), std::string::npos);
  EXPECT_FALSE(G.dot().empty());
}

} // namespace

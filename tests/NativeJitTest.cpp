//===- tests/NativeJitTest.cpp - Native JIT backend tests -------------------===//
//
// The native backend's contract: bit-identity with the sequential
// interpreter, a two-level kernel cache (memory within an engine, disk
// across engines and processes) keyed by content hash, and a fallback
// ladder that degrades every failure — missing compiler, failed compile,
// corrupt cache entry — to the interpreter with the reason recorded.
//
//===----------------------------------------------------------------------===//

#include "exec/NativeJit.h"

#include "analysis/ASDG.h"
#include "exec/ParallelExecutor.h"
#include "ir/Normalize.h"
#include "obs/Obs.h"
#include "scalarize/Scalarize.h"
#include "support/Statistic.h"
#include "xform/Strategy.h"

#include "TestPrograms.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <thread>
#include <unistd.h>

using namespace alf;
using namespace alf::analysis;
using namespace alf::exec;
using namespace alf::xform;

namespace {

bool HaveCompiler = JitEngine::compilerAvailable();

/// A fresh cache directory unique to this test process, removed on
/// destruction so runs never see each other's kernels.
struct TempCacheDir {
  std::string Path;
  TempCacheDir() {
    Path = (std::filesystem::temp_directory_path() /
            ("alf-jit-test-" + std::to_string(getpid())))
               .string();
    std::filesystem::remove_all(Path);
  }
  ~TempCacheDir() {
    std::error_code EC;
    std::filesystem::remove_all(Path, EC);
  }
};

lir::LoopProgram makeLoopProgram(ir::Program &P, Strategy S = Strategy::C2) {
  ir::normalizeProgram(P);
  ASDG G = ASDG::build(P);
  return scalarize::scalarizeWithStrategy(G, S);
}

TEST(NativeJitTest, BitIdenticalToInterpreterAcrossStrategies) {
  if (!HaveCompiler)
    GTEST_SKIP() << "no usable system C compiler";
  TempCacheDir Cache;
  JitOptions Opts;
  Opts.CacheDir = Cache.Path;
  JitEngine Engine(Opts);

  auto P = tp::makeUserTempPair();
  ir::normalizeProgram(*P);
  ASDG G = ASDG::build(*P);
  for (Strategy S : allStrategiesForTest()) {
    auto LP = scalarize::scalarizeWithStrategy(G, S);
    RunResult Interp = run(LP, 7);
    JitRunInfo Info;
    RunResult Jit = Engine.run(LP, 7, &Info);
    ASSERT_TRUE(Info.UsedJit) << Info.FallbackReason;
    std::string Why;
    EXPECT_TRUE(resultsMatch(Interp, Jit, 0.0, &Why))
        << getStrategyName(S) << ": " << Why;
  }
}

TEST(NativeJitTest, CacheMissThenMemoryHitThenDiskHit) {
  if (!HaveCompiler)
    GTEST_SKIP() << "no usable system C compiler";
  TempCacheDir Cache;
  JitOptions Opts;
  Opts.CacheDir = Cache.Path;

  auto P = tp::makeFigure2();
  auto LP = makeLoopProgram(*P);

  JitEngine First(Opts);
  JitRunInfo Info;
  First.run(LP, 3, &Info);
  ASSERT_TRUE(Info.UsedJit) << Info.FallbackReason;
  EXPECT_TRUE(Info.Compiled);
  EXPECT_FALSE(Info.CacheHitMemory);
  EXPECT_FALSE(Info.CacheHitDisk);
  EXPECT_TRUE(std::filesystem::exists(Info.SoPath));
  EXPECT_EQ(Info.SoPath, First.cachePathFor(LP));

  // Same engine, same kernel: served from memory, not recompiled.
  First.run(LP, 4, &Info);
  EXPECT_TRUE(Info.UsedJit);
  EXPECT_FALSE(Info.Compiled);
  EXPECT_TRUE(Info.CacheHitMemory);

  // A second engine over the same directory: loaded from disk.
  JitEngine Second(Opts);
  Second.run(LP, 5, &Info);
  EXPECT_TRUE(Info.UsedJit);
  EXPECT_FALSE(Info.Compiled);
  EXPECT_TRUE(Info.CacheHitDisk);
}

TEST(NativeJitTest, CorruptCacheEntryIsDiscardedAndRecompiled) {
  if (!HaveCompiler)
    GTEST_SKIP() << "no usable system C compiler";
  TempCacheDir Cache;
  JitOptions Opts;
  Opts.CacheDir = Cache.Path;

  auto P = tp::makeFigure2();
  auto LP = makeLoopProgram(*P);

  {
    JitEngine Engine(Opts);
    JitRunInfo Info;
    Engine.run(LP, 3, &Info);
    ASSERT_TRUE(Info.UsedJit) << Info.FallbackReason;
  }

  // Truncate the entry: dlopen must reject it, the engine must discard
  // it, recompile, and still produce the right answer.
  JitEngine Engine(Opts);
  std::string So = Engine.cachePathFor(LP);
  ASSERT_FALSE(So.empty());
  { std::ofstream(So, std::ios::trunc) << "not a shared object"; }

  uint64_t CorruptBefore = getStatisticValue("jit", "NumJitCacheCorrupt");
  JitRunInfo Info;
  RunResult Jit = Engine.run(LP, 3, &Info);
  EXPECT_TRUE(Info.UsedJit) << Info.FallbackReason;
  EXPECT_TRUE(Info.Compiled);
  EXPECT_FALSE(Info.CacheHitDisk);
  EXPECT_EQ(getStatisticValue("jit", "NumJitCacheCorrupt"),
            CorruptBefore + 1);
  std::string Why;
  EXPECT_TRUE(resultsMatch(run(LP, 3), Jit, 0.0, &Why)) << Why;
}

TEST(NativeJitTest, CompileFailureFallsBackToInterpreter) {
  TempCacheDir Cache;
  JitOptions Opts;
  Opts.CacheDir = Cache.Path;
  Opts.Compiler = "/nonexistent/alf-no-such-compiler";
  JitEngine Engine(Opts);

  auto P = tp::makeFigure2();
  auto LP = makeLoopProgram(*P);

  uint64_t FallbacksBefore = getStatisticValue("jit", "NumJitFallbacks");
  JitRunInfo Info;
  RunResult Res = Engine.run(LP, 11, &Info);
  EXPECT_FALSE(Info.UsedJit);
  EXPECT_NE(Info.FallbackReason.find("not available"), std::string::npos)
      << Info.FallbackReason;
  EXPECT_EQ(getStatisticValue("jit", "NumJitFallbacks"), FallbacksBefore + 1);

  // The fallback result is the interpreter's, exactly.
  std::string Why;
  EXPECT_TRUE(resultsMatch(run(LP, 11), Res, 0.0, &Why)) << Why;
}

TEST(NativeJitTest, BadFlagsCountAsCompileFailure) {
  if (!HaveCompiler)
    GTEST_SKIP() << "no usable system C compiler";
  TempCacheDir Cache;
  JitOptions Opts;
  Opts.CacheDir = Cache.Path;
  Opts.Flags = "-std=c99 -fPIC -shared --alf-definitely-not-a-flag";
  JitEngine Engine(Opts);

  auto P = tp::makeFigure2();
  auto LP = makeLoopProgram(*P);

  uint64_t FailuresBefore =
      getStatisticValue("jit", "NumJitCompileFailures");
  JitRunInfo Info;
  RunResult Res = Engine.run(LP, 13, &Info);
  EXPECT_FALSE(Info.UsedJit);
  EXPECT_TRUE(Info.Compiled);
  EXPECT_NE(Info.FallbackReason.find("compile failed"), std::string::npos)
      << Info.FallbackReason;
  EXPECT_EQ(getStatisticValue("jit", "NumJitCompileFailures"),
            FailuresBefore + 1);
  std::string Why;
  EXPECT_TRUE(resultsMatch(run(LP, 13), Res, 0.0, &Why)) << Why;
}

TEST(NativeJitTest, SizeBoundEvictsOldestKeepsNewest) {
  if (!HaveCompiler)
    GTEST_SKIP() << "no usable system C compiler";
  TempCacheDir Cache;
  JitOptions Opts;
  Opts.CacheDir = Cache.Path;

  auto PA = tp::makeFigure2();
  auto LPA = makeLoopProgram(*PA, Strategy::Baseline);
  auto PB = tp::makeUserTempPair();
  auto LPB = makeLoopProgram(*PB, Strategy::C2);

  // With no bound, both kernels stay on disk.
  std::string SoA, SoB;
  {
    JitEngine Engine(Opts);
    JitRunInfo Info;
    Engine.run(LPA, 3, &Info);
    ASSERT_TRUE(Info.UsedJit) << Info.FallbackReason;
    SoA = Info.SoPath;
    Engine.run(LPB, 3, &Info);
    ASSERT_TRUE(Info.UsedJit) << Info.FallbackReason;
    SoB = Info.SoPath;
  }
  ASSERT_NE(SoA, SoB);
  EXPECT_TRUE(std::filesystem::exists(SoA));
  EXPECT_TRUE(std::filesystem::exists(SoB));

  // A bound too small for even one kernel still keeps the entry just
  // installed: evicting the kernel we are about to run would thrash.
  Opts.MaxCacheBytes = 1;
  uint64_t EvictBefore = getStatisticValue("jit", "NumJitCacheEvictions");
  JitEngine Bounded(Opts);
  auto PC = tp::makeTomcatvFragment();
  auto LPC = makeLoopProgram(*PC, Strategy::C2F3);
  JitRunInfo Info;
  Bounded.run(LPC, 3, &Info);
  ASSERT_TRUE(Info.UsedJit) << Info.FallbackReason;
  ASSERT_TRUE(Info.Compiled);
  EXPECT_TRUE(std::filesystem::exists(Info.SoPath));
  EXPECT_FALSE(std::filesystem::exists(SoA)); // both older entries evicted
  EXPECT_FALSE(std::filesystem::exists(SoB));
  EXPECT_EQ(getStatisticValue("jit", "NumJitCacheEvictions"),
            EvictBefore + 2);
}

TEST(NativeJitTest, DiskHitRefreshesRecencyForEviction) {
  if (!HaveCompiler)
    GTEST_SKIP() << "no usable system C compiler";
  TempCacheDir Cache;
  JitOptions Opts;
  Opts.CacheDir = Cache.Path;

  auto PA = tp::makeFigure2();
  auto LPA = makeLoopProgram(*PA, Strategy::Baseline);
  auto PB = tp::makeUserTempPair();
  auto LPB = makeLoopProgram(*PB, Strategy::C2);

  auto PC = tp::makeTomcatvFragment();
  auto LPC = makeLoopProgram(*PC, Strategy::C2F3);

  // An entry is the .so plus its retained .c source.
  auto pairBytes = [](const std::string &So) {
    uint64_t N = std::filesystem::file_size(So);
    std::filesystem::path C = std::filesystem::path(So).replace_extension(".c");
    std::error_code EC;
    uint64_t CN = std::filesystem::file_size(C, EC);
    return EC ? N : N + CN;
  };

  std::string SoA, SoB, SoC;
  uint64_t BytesA, BytesC;
  {
    JitEngine Engine(Opts);
    JitRunInfo Info;
    Engine.run(LPA, 3, &Info);
    ASSERT_TRUE(Info.UsedJit) << Info.FallbackReason;
    SoA = Info.SoPath;
    BytesA = pairBytes(SoA);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    Engine.run(LPB, 3, &Info);
    ASSERT_TRUE(Info.UsedJit) << Info.FallbackReason;
    SoB = Info.SoPath;
    // Compile C once just to learn its on-disk size, then drop it so the
    // bounded engine below re-installs it.
    Engine.run(LPC, 3, &Info);
    ASSERT_TRUE(Info.UsedJit) << Info.FallbackReason;
    SoC = Info.SoPath;
    BytesC = pairBytes(SoC);
    std::filesystem::remove(SoC);
    std::filesystem::remove(
        std::filesystem::path(SoC).replace_extension(".c"));
  }

  // Touch A from a fresh engine (a disk hit): A becomes more recently
  // used than B even though it was installed earlier.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  {
    JitEngine Engine(Opts);
    JitRunInfo Info;
    Engine.run(LPA, 4, &Info);
    ASSERT_TRUE(Info.CacheHitDisk) << Info.FallbackReason;
  }

  // Budget fits A and C but not B as well: installing C must evict
  // exactly one entry, and LRU order says that is B.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Opts.MaxCacheBytes = BytesA + BytesC;
  JitEngine Bounded(Opts);
  JitRunInfo Info;
  Bounded.run(LPC, 3, &Info);
  ASSERT_TRUE(Info.UsedJit) << Info.FallbackReason;
  ASSERT_TRUE(Info.Compiled);
  EXPECT_TRUE(std::filesystem::exists(SoA));  // recently used: survives
  EXPECT_FALSE(std::filesystem::exists(SoB)); // LRU: evicted
  EXPECT_TRUE(std::filesystem::exists(Info.SoPath));
}

TEST(NativeJitTest, ExecModeDispatchesToJit) {
  auto P = tp::makeTomcatvFragment();
  auto LP = makeLoopProgram(*P, Strategy::C2F3);
  // Works with or without a compiler: NativeJit degrades to the
  // interpreter, so runWithMode always agrees with exec::run.
  RunResult Seq = run(LP, 21);
  RunResult Jit = runWithMode(LP, 21, ExecMode::NativeJit);
  std::string Why;
  EXPECT_TRUE(resultsMatch(Seq, Jit, 0.0, &Why)) << Why;
}

// The vectorizer's legality check is only trustworthy if a nest it
// should refuse actually takes the scalar fallback. The emitter-side
// fault hook plants a cross-lane carried-dependence verdict in every
// nest of a program that demonstrably vectorizes without it; the engine
// must emit the scalar spelling instead (counted per nest in the
// jit.vectorize fallback statistic), and the faulted kernel must still
// match the interpreter bit-for-bit.
TEST(NativeJitTest, PlantedCarriedDependenceForcesScalarFallback) {
  if (!HaveCompiler)
    GTEST_SKIP() << "no usable system C compiler";
  TempCacheDir Cache;
  JitOptions Opts;
  Opts.CacheDir = Cache.Path;
  Opts.Vectorize = true;
  JitEngine Engine(Opts);

  auto P = tp::makeUserTempPair();
  auto LP = makeLoopProgram(*P);
  ASSERT_EQ(scalarize::simdToleranceFor(LP), support::Tolerance::Exact);

  // Control: with no fault planted, this program vectorizes.
  JitRunInfo Clean;
  RunResult CleanRes = Engine.run(LP, 29, &Clean);
  ASSERT_TRUE(Clean.UsedJit) << Clean.FallbackReason;
  ASSERT_GT(Clean.VectorizedNests, 0u);

  uint64_t FallbacksBefore =
      getStatisticValue("jit.vectorize", "NumVectorizeFallbacks");
  scalarize::setVectorizeFaultForTest(
      scalarize::VectorizeFault::CarriedInnermost);
  JitRunInfo Info;
  RunResult Faulted = Engine.run(LP, 29, &Info);
  bool Applied = scalarize::vectorizeFaultAppliedForTest();
  scalarize::setVectorizeFaultForTest(scalarize::VectorizeFault::None);

  ASSERT_TRUE(Applied) << "fault hook never reached the legality check";
  ASSERT_TRUE(Info.UsedJit) << Info.FallbackReason;
  EXPECT_EQ(Info.VectorizedNests, 0u);
  EXPECT_GE(Info.VectorFallbacks, Clean.VectorizedNests);
  EXPECT_GE(getStatisticValue("jit.vectorize", "NumVectorizeFallbacks"),
            FallbacksBefore + Info.VectorFallbacks);

  // The refused nests ran in their scalar spelling; this program is
  // declared Exact, so the faulted run, the vectorized control and the
  // interpreter all agree bit-for-bit.
  std::string Why;
  EXPECT_TRUE(resultsMatch(run(LP, 29), Faulted, 0.0, &Why)) << Why;
  EXPECT_TRUE(resultsMatch(CleanRes, Faulted, 0.0, &Why)) << Why;
}

// jit-simd through the mode dispatcher, compiler or not: NativeJitSimd
// degrades to the interpreter exactly like NativeJit.
TEST(NativeJitTest, ExecModeDispatchesToJitSimd) {
  auto P = tp::makeTomcatvFragment();
  auto LP = makeLoopProgram(*P, Strategy::C2F3);
  ASSERT_EQ(scalarize::simdToleranceFor(LP), support::Tolerance::Exact);
  RunResult Seq = run(LP, 23);
  RunResult Simd = runWithMode(LP, 23, ExecMode::NativeJitSimd);
  std::string Why;
  EXPECT_TRUE(resultsMatch(Seq, Simd, 0.0, &Why)) << Why;
}

TEST(NativeJitTest, ScalarizeCheckedReportsSuccess) {
  auto P = tp::makeFigure2();
  ir::normalizeProgram(*P);
  ASDG G = ASDG::build(*P);
  StrategyResult SR = applyStrategy(G, Strategy::C2);
  std::string Error;
  auto LP = scalarize::scalarizeChecked(G, SR, &Error);
  ASSERT_TRUE(LP.has_value()) << Error;
  EXPECT_TRUE(Error.empty());
}

TEST(NativeJitTest, ContractedLookupMatchesLinearScan) {
  auto P = tp::makeUserTempPair();
  ir::normalizeProgram(*P);
  ASDG G = ASDG::build(*P);
  StrategyResult SR = applyStrategy(G, Strategy::C2);
  ASSERT_FALSE(SR.Contracted.empty());
  for (const auto *A : SR.Contracted)
    EXPECT_TRUE(SR.isContracted(A));
  for (const ir::ArraySymbol *Sym : G.getProgram().arrays()) {
    bool Linear = std::find(SR.Contracted.begin(), SR.Contracted.end(),
                            Sym) != SR.Contracted.end();
    EXPECT_EQ(SR.isContracted(Sym), Linear) << Sym->getName();
  }
}

// The obs metrics must let a reader tell a cold dispatch (one compile,
// no cache hits) apart from a warm one (zero compiles, one memory hit).
TEST(NativeJitTest, ObsMetricsDistinguishCompileFromCacheHit) {
  if (!HaveCompiler)
    GTEST_SKIP() << "no usable system C compiler";
  TempCacheDir Cache;
  JitOptions Opts;
  Opts.CacheDir = Cache.Path;
  JitEngine Engine(Opts);

  auto P = tp::makeUserTempPair();
  auto LP = makeLoopProgram(*P);

  obs::ScopedLevel Lvl(obs::ObsLevel::Counters);

  obs::reset();
  JitRunInfo Cold;
  Engine.run(LP, 11, &Cold);
  ASSERT_TRUE(Cold.UsedJit) << Cold.FallbackReason;
  ASSERT_TRUE(Cold.Compiled);
  auto Compile = obs::metricsFor("jit.compile");
  ASSERT_TRUE(Compile.has_value());
  EXPECT_EQ(Compile->Count, 1u);
  EXPECT_GT(Compile->TotalNs, 0u);
  auto Emit = obs::metricsFor("jit.emit");
  ASSERT_TRUE(Emit.has_value());
  EXPECT_EQ(Emit->Count, 1u);
  auto Dispatch = obs::metricsFor("jit.dispatch");
  ASSERT_TRUE(Dispatch.has_value());
  EXPECT_EQ(Dispatch->Count, 1u);
  EXPECT_GT(Dispatch->Bytes, 0u);
  EXPECT_FALSE(obs::metricsFor("jit.cache.memory_hit").has_value());

  // Warm: the same engine serves the kernel from memory. Zero compiles,
  // nonzero cache hits. Emission still happens once per run because the
  // cache key is the content hash of the emitted source.
  obs::reset();
  JitRunInfo Warm;
  Engine.run(LP, 12, &Warm);
  ASSERT_TRUE(Warm.UsedJit);
  ASSERT_TRUE(Warm.CacheHitMemory);
  EXPECT_FALSE(obs::metricsFor("jit.compile").has_value());
  auto Hit = obs::metricsFor("jit.cache.memory_hit");
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(Hit->Count, 1u);
  auto WarmDispatch = obs::metricsFor("jit.dispatch");
  ASSERT_TRUE(WarmDispatch.has_value());
  EXPECT_EQ(WarmDispatch->Count, 1u);
  obs::reset();
}

} // namespace

//===- tests/ProgramTest.cpp - Program, normalizer, verifier tests ---------===//

#include "ir/Normalize.h"
#include "ir/Program.h"
#include "ir/Verifier.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

using namespace alf;
using namespace alf::ir;

TEST(ProgramTest, SymbolCreationAndLookup) {
  Program P("t");
  ArraySymbol *A = P.makeArray("A", 2);
  ScalarSymbol *S = P.makeScalar("s");
  EXPECT_EQ(P.findSymbol("A"), A);
  EXPECT_EQ(P.findSymbol("s"), S);
  EXPECT_EQ(P.findSymbol("missing"), nullptr);
  EXPECT_EQ(P.numSymbols(), 2u);
  EXPECT_EQ(A->getId(), 0u);
  EXPECT_EQ(S->getId(), 1u);
}

TEST(ProgramTest, ArrayTraits) {
  Program P("t");
  ArraySymbol *U = P.makeArray("U", 2);
  ArraySymbol *T = P.makeUserTemp("T", 2);
  ArraySymbol *C = P.makeCompilerTemp("_C", 2);
  EXPECT_TRUE(U->isLiveOut());
  EXPECT_TRUE(U->isLiveIn());
  EXPECT_FALSE(U->isCompilerTemp());
  EXPECT_FALSE(T->isLiveOut());
  EXPECT_FALSE(T->isCompilerTemp());
  EXPECT_TRUE(C->isCompilerTemp());
  EXPECT_FALSE(C->isLiveOut());
}

TEST(ProgramTest, RegionInterning) {
  Program P("t");
  const Region *R1 = P.regionFromExtents({4, 4});
  const Region *R2 = P.regionFromExtents({4, 4});
  const Region *R3 = P.regionFromExtents({4, 5});
  EXPECT_EQ(R1, R2);
  EXPECT_NE(R1, R3);
}

TEST(ProgramTest, StatementIdsAreDense) {
  auto P = tp::makeFigure2();
  ASSERT_EQ(P->numStmts(), 3u);
  for (unsigned I = 0; I < 3; ++I)
    EXPECT_EQ(P->getStmt(I)->getId(), I);
}

TEST(ProgramTest, StatementPrinting) {
  auto P = tp::makeFigure2();
  EXPECT_EQ(P->getStmt(0)->str(), "[1..8,1..8] A := B@(-1,0);");
  EXPECT_EQ(P->getStmt(1)->str(), "[1..8,1..8] C := A@(0,-1);");
  EXPECT_EQ(P->getStmt(2)->str(), "[1..8,1..8] B := A@(-1,1);");
}

TEST(ProgramTest, InsertAndRemoveRenumber) {
  auto P = tp::makeFigure2();
  const Region *R = P->regionFromExtents({8, 8});
  const ArraySymbol *A =
      cast<ArraySymbol>(P->findSymbol("A"));
  auto S = std::make_unique<NormalizedStmt>(R, A, Offset::zero(2), cst(0.0));
  P->insertStmt(1, std::move(S));
  EXPECT_EQ(P->numStmts(), 4u);
  for (unsigned I = 0; I < 4; ++I)
    EXPECT_EQ(P->getStmt(I)->getId(), I);
  P->removeStmt(1);
  EXPECT_EQ(P->numStmts(), 3u);
  EXPECT_EQ(P->getStmt(1)->str(), "[1..8,1..8] C := A@(0,-1);");
}

TEST(VerifierTest, WellFormedProgramPasses) {
  auto P = tp::makeFigure2();
  EXPECT_TRUE(isWellFormed(*P));
}

TEST(VerifierTest, DetectsReadWriteOverlap) {
  Program P("bad");
  const Region *R = P.regionFromExtents({8});
  ArraySymbol *A = P.makeArray("A", 1);
  P.assign(R, A, add(aref(A, {-1}), cst(1)));
  auto Errors = verifyProgram(P);
  ASSERT_EQ(Errors.size(), 1u);
  EXPECT_NE(Errors[0].find("both read and written"), std::string::npos);
}

TEST(VerifierTest, DetectsRankMismatch) {
  Program P("bad");
  const Region *R = P.regionFromExtents({8});
  ArraySymbol *A = P.makeArray("A", 1);
  ArraySymbol *B = P.makeArray("B", 2);
  P.assign(R, A, aref(B, {0, 0}));
  auto Errors = verifyProgram(P);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("rank"), std::string::npos);
}

TEST(NormalizeTest, SplitsReadWriteStatement) {
  Program P("t");
  const Region *R = P.regionFromExtents({8});
  ArraySymbol *A = P.makeArray("A", 1);
  P.assign(R, A, add(aref(A, {-1}), aref(A, {-1})));
  EXPECT_FALSE(isWellFormed(P));

  unsigned Inserted = normalizeProgram(P);
  EXPECT_EQ(Inserted, 1u);
  EXPECT_TRUE(isWellFormed(P));
  ASSERT_EQ(P.numStmts(), 2u);
  EXPECT_EQ(P.getStmt(0)->str(), "[1..8] _T1 := (A@(-1) + A@(-1));");
  EXPECT_EQ(P.getStmt(1)->str(), "[1..8] A := _T1;");

  const auto *Temp = dyn_cast<ArraySymbol>(P.findSymbol("_T1"));
  ASSERT_NE(Temp, nullptr);
  EXPECT_TRUE(Temp->isCompilerTemp());
}

TEST(NormalizeTest, LeavesNormalizedStatementsAlone) {
  auto P = tp::makeFigure2();
  EXPECT_EQ(normalizeProgram(*P), 0u);
  EXPECT_EQ(P->numStmts(), 3u);
}

TEST(NormalizeTest, SplitsMultipleStatements) {
  Program P("t");
  const Region *R = P.regionFromExtents({8, 8});
  ArraySymbol *A = P.makeArray("A", 2);
  ArraySymbol *B = P.makeArray("B", 2);
  P.assign(R, A, add(aref(A), aref(B)));
  P.assign(R, B, mul(aref(B, {0, 1}), cst(2)));
  EXPECT_EQ(normalizeProgram(P), 2u);
  EXPECT_TRUE(isWellFormed(P));
  EXPECT_EQ(P.numStmts(), 4u);
  // Distinct temporaries.
  EXPECT_NE(P.findSymbol("_T1"), nullptr);
  EXPECT_NE(P.findSymbol("_T2"), nullptr);
}

TEST(NormalizeTest, AlignedSelfAssignAlsoSplit) {
  // Figure 5 fragment (5): A = A + A. Condition (i) is strict: the
  // normalizer always splits, and contraction later removes the
  // temporary.
  Program P("frag5");
  const Region *R = P.regionFromExtents({8, 8});
  ArraySymbol *A = P.makeArray("A", 2);
  P.assign(R, A, add(aref(A), aref(A)));
  EXPECT_EQ(normalizeProgram(P), 1u);
  EXPECT_TRUE(isWellFormed(P));
}

TEST(ProgramTest, OpaqueStmtAccesses) {
  Program P("t");
  const Region *R = P.regionFromExtents({8});
  ArraySymbol *A = P.makeArray("A", 1);
  ScalarSymbol *S = P.makeScalar("sum");
  OpaqueStmt *O = P.opaque("reduce", R, {A}, {}, {}, {S}, 1.0,
                           /*GlobalReduction=*/true);
  std::vector<Access> Accs;
  O->getAccesses(Accs);
  ASSERT_EQ(Accs.size(), 2u);
  EXPECT_EQ(Accs[0].Sym, A);
  EXPECT_FALSE(Accs[0].IsWrite);
  EXPECT_FALSE(Accs[0].Off.has_value());
  EXPECT_EQ(Accs[1].Sym, S);
  EXPECT_TRUE(Accs[1].IsWrite);
  EXPECT_TRUE(O->isGlobalReduction());
}

TEST(ProgramTest, CommStmtAccesses) {
  Program P("t");
  ArraySymbol *A = P.makeArray("A", 2);
  CommStmt *C = P.comm(A, {0, 1});
  std::vector<Access> Accs;
  C->getAccesses(Accs);
  ASSERT_EQ(Accs.size(), 2u);
  EXPECT_EQ(Accs[0].Sym, A);
  EXPECT_FALSE(Accs[0].IsWrite);
  EXPECT_TRUE(Accs[1].IsWrite);
  EXPECT_EQ(C->str(), "comm.exchange A@(0,1);");
}

//===- tests/PipelineTest.cpp - driver::Pipeline facade tests ---------------===//
//
// The Pipeline facade must produce exactly what the hand-assembled chain
// (normalize -> ASDG -> applyStrategy -> scalarize -> comm -> execute)
// produces, under every communication policy and execution mode.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include "analysis/ASDG.h"
#include "comm/CommInsertion.h"
#include "exec/Interpreter.h"
#include "ir/Normalize.h"
#include "scalarize/Scalarize.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

using namespace alf;
using namespace alf::driver;
using namespace alf::exec;
using namespace alf::xform;

namespace {

TEST(PipelineTest, MatchesHandAssembledChain) {
  auto Manual = tp::makeUserTempPair();
  ir::normalizeProgram(*Manual);
  analysis::ASDG G = analysis::ASDG::build(*Manual);

  auto Facade = tp::makeUserTempPair();
  Pipeline PL(*Facade);

  for (Strategy S : allStrategies()) {
    auto Expected = scalarize::scalarizeWithStrategy(G, S);
    EXPECT_EQ(PL.scalarize(S).str(), Expected.str()) << getStrategyName(S);
  }
}

TEST(PipelineTest, LoopLevelCommPolicyMatchesManualInsertion) {
  auto Manual = tp::makeFigure2();
  ir::normalizeProgram(*Manual);
  analysis::ASDG G = analysis::ASDG::build(*Manual);
  auto Expected = scalarize::scalarizeWithStrategy(G, Strategy::C2F3);
  comm::insertLoopLevelComm(Expected);

  auto Facade = tp::makeFigure2();
  PipelineOptions Opts;
  Opts.Comm = CommPolicy::LoopLevel;
  Pipeline PL(*Facade, Opts);
  EXPECT_EQ(PL.scalarize(Strategy::C2F3).str(), Expected.str());
}

TEST(PipelineTest, ArrayLevelCommPolicyMatchesManualInsertion) {
  auto Manual = tp::makeFigure2();
  ir::normalizeProgram(*Manual);
  comm::insertArrayLevelComm(*Manual, /*Pipelined=*/true);
  analysis::ASDG G = analysis::ASDG::build(*Manual);
  auto Expected = scalarize::scalarizeWithStrategy(G, Strategy::C2F3);

  auto Facade = tp::makeFigure2();
  PipelineOptions Opts;
  Opts.Comm = CommPolicy::ArrayLevel;
  Pipeline PL(*Facade, Opts);
  EXPECT_EQ(PL.scalarize(Strategy::C2F3).str(), Expected.str());
}

TEST(PipelineTest, AllExecModesAgree) {
  auto P = tp::makeUserTempPair();
  Pipeline PL(*P);
  RunResult Seq = PL.run(Strategy::C2, ExecMode::Sequential, 5);
  for (ExecMode Mode : allExecModes()) {
    RunResult Res = PL.run(Strategy::C2, Mode, 5);
    std::string Why;
    EXPECT_TRUE(resultsMatch(Seq, Res, 0.0, &Why))
        << getExecModeName(Mode) << ": " << Why;
  }
}

TEST(PipelineTest, StrategyAndAsdgAreServedFromSharedAnalysis) {
  auto P = tp::makeUserTempPair();
  Pipeline PL(*P);
  const analysis::ASDG &G1 = PL.asdg();
  const analysis::ASDG &G2 = PL.asdg();
  EXPECT_EQ(&G1, &G2); // built once
  StrategyResult SR = PL.strategy(Strategy::C2);
  EXPECT_FALSE(SR.Partition.numClusters() == 0);
  auto LP = PL.scalarize(SR);
  RunResult Res = PL.run(LP, ExecMode::Sequential, 3);
  std::string Why;
  EXPECT_TRUE(resultsMatch(run(LP, 3), Res, 0.0, &Why)) << Why;
}

TEST(PipelineTest, OneShotRunProgram) {
  auto A = tp::makeTomcatvFragment();
  auto B = tp::makeTomcatvFragment();
  ir::normalizeProgram(*B);
  analysis::ASDG G = analysis::ASDG::build(*B);
  auto LP = scalarize::scalarizeWithStrategy(G, Strategy::F1);
  std::string Why;
  EXPECT_TRUE(resultsMatch(
      run(LP, 9),
      Pipeline::runProgram(*A, Strategy::F1, ExecMode::Sequential,
                           PipelineOptions(), 9),
      0.0, &Why))
      << Why;
}

} // namespace

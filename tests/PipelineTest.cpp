//===- tests/PipelineTest.cpp - driver::Pipeline facade tests ---------------===//
//
// The Pipeline facade must produce exactly what the hand-assembled chain
// (normalize -> ASDG -> applyStrategy -> scalarize -> comm -> execute)
// produces, under every communication policy and execution mode.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include "analysis/ASDG.h"
#include "comm/CommInsertion.h"
#include "exec/Interpreter.h"
#include "ir/Normalize.h"
#include "scalarize/Scalarize.h"
#include "xform/IlpStrategy.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

using namespace alf;
using namespace alf::driver;
using namespace alf::exec;
using namespace alf::xform;

namespace {

TEST(PipelineTest, MatchesHandAssembledChain) {
  auto Manual = tp::makeUserTempPair();
  ir::normalizeProgram(*Manual);
  analysis::ASDG G = analysis::ASDG::build(*Manual);

  auto Facade = tp::makeUserTempPair();
  Pipeline PL(*Facade);

  for (Strategy S : allStrategiesForTest()) {
    auto Expected = scalarize::scalarizeWithStrategy(G, S);
    EXPECT_EQ(PL.scalarize(S).str(), Expected.str()) << getStrategyName(S);
  }
}

TEST(PipelineTest, LoopLevelCommPolicyMatchesManualInsertion) {
  auto Manual = tp::makeFigure2();
  ir::normalizeProgram(*Manual);
  analysis::ASDG G = analysis::ASDG::build(*Manual);
  auto Expected = scalarize::scalarizeWithStrategy(G, Strategy::C2F3);
  comm::insertLoopLevelComm(Expected);

  auto Facade = tp::makeFigure2();
  PipelineOptions Opts;
  Opts.Comm = CommPolicy::LoopLevel;
  Pipeline PL(*Facade, Opts);
  EXPECT_EQ(PL.scalarize(Strategy::C2F3).str(), Expected.str());
}

TEST(PipelineTest, ArrayLevelCommPolicyMatchesManualInsertion) {
  auto Manual = tp::makeFigure2();
  ir::normalizeProgram(*Manual);
  comm::insertArrayLevelComm(*Manual, /*Pipelined=*/true);
  analysis::ASDG G = analysis::ASDG::build(*Manual);
  auto Expected = scalarize::scalarizeWithStrategy(G, Strategy::C2F3);

  auto Facade = tp::makeFigure2();
  PipelineOptions Opts;
  Opts.Comm = CommPolicy::ArrayLevel;
  Pipeline PL(*Facade, Opts);
  EXPECT_EQ(PL.scalarize(Strategy::C2F3).str(), Expected.str());
}

TEST(PipelineTest, AllExecModesAgree) {
  auto P = tp::makeUserTempPair();
  Pipeline PL(*P);
  RunResult Seq = PL.run(Strategy::C2, ExecMode::Sequential, 5);
  for (ExecMode Mode : allExecModes()) {
    RunResult Res = PL.run(Strategy::C2, Mode, 5);
    std::string Why;
    EXPECT_TRUE(resultsMatch(Seq, Res, 0.0, &Why))
        << getExecModeName(Mode) << ": " << Why;
  }
}

TEST(PipelineTest, StrategyAndAsdgAreServedFromSharedAnalysis) {
  auto P = tp::makeUserTempPair();
  Pipeline PL(*P);
  const analysis::ASDG &G1 = PL.asdg();
  const analysis::ASDG &G2 = PL.asdg();
  EXPECT_EQ(&G1, &G2); // built once
  StrategyResult SR = PL.strategy(Strategy::C2);
  EXPECT_FALSE(SR.Partition.numClusters() == 0);
  auto LP = PL.scalarize(SR);
  RunResult Res = PL.run(LP, ExecMode::Sequential, 3);
  std::string Why;
  EXPECT_TRUE(resultsMatch(run(LP, 3), Res, 0.0, &Why)) << Why;
}

TEST(TryCompileTest, OkProducesStatusWithArtifactAndStrategy) {
  auto P = tp::makeUserTempPair();
  Pipeline PL(*P);
  CompileRequest Req;
  Req.Strat = Strategy::C2;
  CompileStatus St = PL.tryCompile(Req);
  EXPECT_EQ(St.Code, CompileCode::Ok);
  EXPECT_TRUE(St.ok());
  EXPECT_TRUE(St.Message.empty());
  ASSERT_TRUE(St.SR.has_value());
  ASSERT_TRUE(St.Artifact.has_value());
  EXPECT_EQ(St.Artifact->NumClusters, St.SR->Partition.numClusters());

  // The artifact is the same loop program the legacy facade produces.
  auto Q = tp::makeUserTempPair();
  Pipeline PL2(*Q);
  EXPECT_EQ(St.Artifact->LP.str(), PL2.scalarize(Strategy::C2).str());
}

TEST(TryCompileTest, ReentrantAcrossStrategies) {
  auto P = tp::makeTomcatvFragment();
  Pipeline PL(*P);
  for (Strategy S : allStrategiesForTest()) {
    CompileRequest Req;
    Req.Strat = S;
    CompileStatus St = PL.tryCompile(Req);
    EXPECT_TRUE(St.ok()) << getStrategyName(S) << ": " << St.Message;
    ASSERT_TRUE(St.Artifact.has_value());
  }
}

TEST(TryCompileTest, InvalidProgramIsAStatusNotAnAbort) {
  // Unnormalized Tomcatv reads and writes Rx/Ry in one statement —
  // normal-form condition (i). With the pipeline's own normalization
  // off, tryCompile must report it instead of dying.
  auto P = tp::makeTomcatvFragment();
  PipelineOptions Opts;
  Opts.Normalize = false;
  Pipeline PL(*P, Opts);
  CompileStatus St = PL.tryCompile(CompileRequest());
  EXPECT_EQ(St.Code, CompileCode::InvalidProgram);
  EXPECT_FALSE(St.ok());
  EXPECT_FALSE(St.Message.empty());
  EXPECT_FALSE(St.Artifact.has_value());
}

TEST(TryCompileTest, VerifyRejectedOnACorruptedSolver) {
  auto P = tp::makeTomcatvFragment();
  PipelineOptions Opts;
  Opts.Verify = verify::VerifyLevel::Full;
  Pipeline PL(*P, Opts);
  xform::setIlpCorruptionForTest(true);
  CompileRequest Req;
  Req.Strat = Strategy::IlpOptimal;
  CompileStatus St = PL.tryCompile(Req);
  xform::setIlpCorruptionForTest(false);
  EXPECT_EQ(St.Code, CompileCode::VerifyRejected);
  EXPECT_FALSE(St.Message.empty());
  EXPECT_FALSE(St.Findings.ok());
  EXPECT_STREQ(getCompileCodeName(St.Code), "verify-rejected");
}

TEST(TryCompileTest, CompileCodeNamesAreStableWireStrings) {
  EXPECT_STREQ(getCompileCodeName(CompileCode::Ok), "ok");
  EXPECT_STREQ(getCompileCodeName(CompileCode::InvalidProgram),
               "invalid-program");
  EXPECT_STREQ(getCompileCodeName(CompileCode::VerifyRejected),
               "verify-rejected");
}

TEST(TryCompileTest, LegacyCompileWrapperStillRunsOnVerifyError) {
  auto P = tp::makeTomcatvFragment();
  PipelineOptions Opts;
  Opts.Verify = verify::VerifyLevel::Full;
  unsigned Calls = 0;
  Opts.OnVerifyError = [&Calls](const verify::VerifyReport &) { ++Calls; };
  Pipeline PL(*P, Opts);
  xform::setIlpCorruptionForTest(true);
  CompiledProgram CP = PL.compile(Strategy::IlpOptimal);
  xform::setIlpCorruptionForTest(false);
  EXPECT_EQ(Calls, 1u); // handler fired instead of a fatal error
  EXPECT_GE(CP.NumClusters, 1u);
}

TEST(PipelineTest, OneShotRunProgram) {
  auto A = tp::makeTomcatvFragment();
  auto B = tp::makeTomcatvFragment();
  ir::normalizeProgram(*B);
  analysis::ASDG G = analysis::ASDG::build(*B);
  auto LP = scalarize::scalarizeWithStrategy(G, Strategy::F1);
  std::string Why;
  EXPECT_TRUE(resultsMatch(
      run(LP, 9),
      Pipeline::runProgram(*A, Strategy::F1, ExecMode::Sequential,
                           PipelineOptions(), 9),
      0.0, &Why))
      << Why;
}

} // namespace

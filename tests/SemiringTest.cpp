//===- tests/SemiringTest.cpp - Reduction-algebra descriptors ---------------===//
//
// The semiring layer in isolation: the registry (stable names and
// addresses, byName lookup), the law checker that verify consumes
// (every registry instance must certify; the planted non-associative
// instance must not), the fold semantics the backends share, and the
// runtime trace-cache regression — a structurally identical trace under
// two different semirings must compile two kernels, never alias one.
//
//===----------------------------------------------------------------------===//

#include "ir/Stmt.h"
#include "runtime/Runtime.h"
#include "semiring/Semiring.h"

#include <cmath>
#include <gtest/gtest.h>
#include <set>

using namespace alf;
using namespace alf::semiring;

TEST(SemiringRegistryTest, FiveInstancesWithStableNamesAndAddresses) {
  const std::vector<const Semiring *> &Regs = all();
  ASSERT_EQ(Regs.size(), 5u);
  EXPECT_EQ(Regs[0], &plusTimes());
  EXPECT_EQ(Regs[1], &minPlus());
  EXPECT_EQ(Regs[2], &maxTimes());
  EXPECT_EQ(Regs[3], &maxPlus());
  EXPECT_EQ(Regs[4], &orAnd());

  std::set<std::string> Names;
  for (const Semiring *S : Regs) {
    ASSERT_NE(S, nullptr);
    EXPECT_TRUE(Names.insert(S->Name).second)
        << "duplicate registry name " << S->Name;
    // Calling the accessor again must return the same singleton: pointer
    // equality is semiring identity throughout the IR.
    EXPECT_EQ(byName(S->Name), S);
  }
  EXPECT_EQ(plusTimes().Name, "plus-times");
  EXPECT_EQ(minPlus().Name, "min-plus");
  EXPECT_EQ(maxTimes().Name, "max-times");
  EXPECT_EQ(maxPlus().Name, "max-plus");
  EXPECT_EQ(orAnd().Name, "or-and");
}

TEST(SemiringRegistryTest, ByNameRejectsUnknownAndBogus) {
  EXPECT_EQ(byName("no-such-algebra"), nullptr);
  EXPECT_EQ(byName(""), nullptr);
  // The fault-injection instance must never be reachable from the CLI.
  EXPECT_EQ(byName(bogusNonAssociativeForTest().Name), nullptr);
  // allNames feeds CLI help and error messages.
  std::string All = allNames();
  for (const Semiring *S : all())
    EXPECT_NE(All.find(S->Name), std::string::npos) << All;
}

TEST(SemiringRegistryTest, LegacyOpKindsAliasCanonicalInstances) {
  using RK = ir::ReduceStmt::ReduceOpKind;
  EXPECT_EQ(&ir::ReduceStmt::canonical(RK::Sum), &plusTimes());
  EXPECT_EQ(&ir::ReduceStmt::canonical(RK::Min), &minPlus());
  // Plain max<< folds over arbitrary-sign data with identity -inf, which
  // is max-plus; max-times (nonnegative carrier, identity 0) would be an
  // unsound alias.
  EXPECT_EQ(&ir::ReduceStmt::canonical(RK::Max), &maxPlus());
  EXPECT_EQ(&ir::ReduceStmt::canonical(RK::Or), &orAnd());
}

TEST(SemiringAlgebraTest, EveryRegistryInstanceCertifies) {
  for (const Semiring *S : all()) {
    std::vector<std::string> Violations = checkAlgebra(*S);
    EXPECT_TRUE(Violations.empty())
        << S->Name << ": " << (Violations.empty() ? "" : Violations[0]);
  }
}

TEST(SemiringAlgebraTest, PlantedNonAssociativePlusIsRejected) {
  std::vector<std::string> Violations =
      checkAlgebra(bogusNonAssociativeForTest());
  ASSERT_FALSE(Violations.empty())
      << "a subtraction ⊕ must fail the associativity/identity re-proof";
}

TEST(SemiringOpsTest, FoldSemanticsMatchTheBackendContract) {
  // Min/Max return one of their operands (exactness), Or returns exactly
  // 0.0/1.0 under C truthiness — the folds every backend must mirror.
  EXPECT_EQ(applyOp(OpKind::Min, 3.0, -2.0), -2.0);
  EXPECT_EQ(applyOp(OpKind::Max, 3.0, -2.0), 3.0);
  EXPECT_EQ(applyOp(OpKind::Or, 0.0, 0.0), 0.0);
  EXPECT_EQ(applyOp(OpKind::Or, 0.5, 0.0), 1.0);
  EXPECT_EQ(applyOp(OpKind::And, 0.5, 2.0), 1.0);
  EXPECT_EQ(applyOp(OpKind::And, 0.5, 0.0), 0.0);
  EXPECT_EQ(applyOp(OpKind::Add, 2.0, 3.0), 5.0);
  EXPECT_EQ(applyOp(OpKind::Mul, 2.0, 3.0), 6.0);
}

TEST(SemiringOpsTest, PlusIdentityFoldsToTheElementOverEachCarrier) {
  // ⊕(0̄, v) = v for every declared carrier member: the law the
  // scalarizer's accumulator initialization and the pivot-sweep zoo's
  // singleton-region extracts both rely on.
  for (const Semiring *S : all())
    for (double V : S->Carrier) {
      EXPECT_EQ(S->combine(S->PlusIdentity, V), V) << S->Name;
      EXPECT_EQ(S->combine(V, S->PlusIdentity), V) << S->Name;
    }
}

//===----------------------------------------------------------------------===//
// Runtime trace-cache keying
//===----------------------------------------------------------------------===//

TEST(SemiringTraceKeyTest, SameTraceDifferentSemiringIsADifferentKernel) {
  using namespace alf::runtime;
  EngineOptions EO;
  EO.Verify = verify::VerifyLevel::Full;
  Engine E(EO);
  ir::Region R = ir::Region::fromExtents({8});
  Array A = E.input("A", R);
  std::vector<double> Init(R.size());
  for (size_t I = 0; I < Init.size(); ++I)
    Init[I] = 1.0 + static_cast<double>(I % 5); // 1 2 3 4 5 1 2 3
  A.setAll(Init);

  Scalar MinOut = E.reduce(minPlus(), R, A);
  E.flush();
  uint64_t MissesAfterMin = E.stats().CacheMisses;
  EXPECT_GE(MissesAfterMin, 1u);

  // Structurally the identical trace — same region, same operand shape —
  // under a different semiring. A cache hit here would execute the
  // min-fold kernel for a sum.
  Scalar SumOut = E.reduce(plusTimes(), R, A);
  E.flush();
  EXPECT_EQ(E.stats().CacheMisses, MissesAfterMin + 1)
      << "the semiring name must be part of the trace cache key";

  EXPECT_EQ(MinOut.value(), 1.0);
  EXPECT_EQ(SumOut.value(), 21.0);

  // Re-issuing the min-plus trace is now a pure structural hit.
  Scalar MinAgain = E.reduce(minPlus(), R, A);
  E.flush();
  EXPECT_EQ(E.stats().CacheMisses, MissesAfterMin + 1);
  EXPECT_GE(E.stats().CacheHits, 1u);
  EXPECT_EQ(MinAgain.value(), 1.0);
}

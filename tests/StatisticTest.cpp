//===- tests/StatisticTest.cpp - Pass statistics tests -----------------------===//

#include "support/Statistic.h"

#include "analysis/ASDG.h"
#include "ir/Normalize.h"
#include "scalarize/Scalarize.h"
#include "xform/Strategy.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace alf;
using namespace alf::analysis;
using namespace alf::xform;

namespace {

TEST(StatisticTest, CountersIncrementAndReset) {
  ALF_STATISTIC(TestCounter, "test", "A test counter");
  resetStatistics();
  uint64_t Before = TestCounter.value();
  ++TestCounter;
  TestCounter += 4;
  EXPECT_EQ(TestCounter.value(), Before + 5);
  EXPECT_EQ(getStatisticValue("test", "TestCounter"), Before + 5);
  resetStatistics();
  EXPECT_EQ(TestCounter.value(), 0u);
}

TEST(StatisticTest, PassesReportTheirWork) {
  resetStatistics();
  auto P = tp::makeTomcatvFragment(8);
  ir::normalizeProgram(*P);
  ASDG G = ASDG::build(*P);
  auto LP = scalarize::scalarizeWithStrategy(G, Strategy::C2);
  (void)LP;
  EXPECT_EQ(getStatisticValue("normalize", "NumCompilerTemps"), 2u);
  EXPECT_GE(getStatisticValue("fusion", "NumMergesPerformed"), 1u);
  EXPECT_EQ(getStatisticValue("contract", "NumArraysContracted"), 3u);
  EXPECT_GE(getStatisticValue("scalarize", "NumLoopNests"), 1u);
}

TEST(StatisticTest, PrintSkipsZeroCounters) {
  resetStatistics();
  ALF_STATISTIC(NeverBumpedHere, "test", "Should not appear when zero");
  (void)NeverBumpedHere;
  std::ostringstream OS;
  printStatistics(OS);
  EXPECT_EQ(OS.str().find("Should not appear when zero"),
            std::string::npos);
  ALF_STATISTIC(BumpedHere, "test", "Should appear in the report");
  ++BumpedHere;
  std::ostringstream OS2;
  printStatistics(OS2);
  EXPECT_NE(OS2.str().find("Should appear in the report"),
            std::string::npos);
}

} // namespace

//===- tests/CommTest.cpp - Communication insertion tests -------------------===//

#include "comm/CommInsertion.h"

#include "analysis/ASDG.h"
#include "ir/Verifier.h"
#include "scalarize/Scalarize.h"
#include "xform/Strategy.h"

#include <gtest/gtest.h>

using namespace alf;
using namespace alf::analysis;
using namespace alf::comm;
using namespace alf::ir;
using namespace alf::lir;
using namespace alf::xform;

namespace {

unsigned countCommOps(const LoopProgram &LP,
                      CommStmt::CommPhase Phase = CommStmt::CommPhase::Whole) {
  unsigned Count = 0;
  for (const auto &N : LP.nodes())
    if (const auto *C = dyn_cast<CommOp>(N.get()))
      if (C->Phase == Phase)
        ++Count;
  return Count;
}

TEST(RequiredHalosTest, PerDimensionAndSign) {
  Program P("halos");
  const Region *R = P.regionFromExtents({8, 8});
  ArraySymbol *A = P.makeArray("A", 2);
  ArraySymbol *B = P.makeArray("B", 2);
  NormalizedStmt *S =
      P.assign(R, B, add(aref(A, {-1, 0}), add(aref(A, {0, 2}),
                                               aref(A, {-2, 0}))));
  auto Halos = requiredHalos(*S);
  // (-1,0) and (-2,0) combine into one dim-0 negative halo of width 2;
  // (0,2) gives a dim-1 positive halo of width 2.
  ASSERT_EQ(Halos.size(), 2u);
  EXPECT_EQ(Halos[0].second, Offset({-2, 0}));
  EXPECT_EQ(Halos[1].second, Offset({0, 2}));
}

TEST(RequiredHalosTest, AlignedRefsNeedNothing) {
  Program P("aligned");
  const Region *R = P.regionFromExtents({8, 8});
  ArraySymbol *A = P.makeArray("A", 2);
  ArraySymbol *B = P.makeArray("B", 2);
  NormalizedStmt *S = P.assign(R, B, add(aref(A), aref(A)));
  EXPECT_TRUE(requiredHalos(*S).empty());
}

TEST(LoopLevelCommTest, InsertsBeforeConsumingNest) {
  Program P("stencil");
  const Region *R = P.regionFromExtents({8, 8});
  ArraySymbol *A = P.makeArray("A", 2);
  ArraySymbol *B = P.makeArray("B", 2);
  P.assign(R, B, add(aref(A, {-1, 0}), aref(A, {1, 0})));
  ASDG G = ASDG::build(P);
  auto LP = scalarize::scalarizeWithStrategy(G, Strategy::Baseline);
  CommPlan Plan = insertLoopLevelComm(LP);
  EXPECT_EQ(Plan.Exchanges, 2u); // both directions along dim 0
  EXPECT_EQ(countCommOps(LP), 2u);
  ASSERT_EQ(LP.nodes().size(), 3u);
  EXPECT_TRUE(isa<CommOp>(LP.nodes()[0].get()));
  EXPECT_TRUE(isa<CommOp>(LP.nodes()[1].get()));
  EXPECT_TRUE(isa<LoopNest>(LP.nodes()[2].get()));
}

TEST(LoopLevelCommTest, RedundancyElimination) {
  // Two consumers of the same halo with no intervening write: one
  // exchange.
  Program P("redundant");
  const Region *R = P.regionFromExtents({8, 8});
  ArraySymbol *A = P.makeArray("A", 2);
  ArraySymbol *B = P.makeArray("B", 2);
  ArraySymbol *C = P.makeArray("C", 2);
  P.assign(R, B, aref(A, {0, 1}));
  P.assign(R, C, aref(A, {0, 1}));
  ASDG G = ASDG::build(P);
  auto LP = scalarize::scalarizeWithStrategy(G, Strategy::Baseline);
  CommPlan Plan = insertLoopLevelComm(LP);
  EXPECT_EQ(Plan.Exchanges, 1u);
  EXPECT_EQ(Plan.RedundantElided, 1u);
}

TEST(LoopLevelCommTest, WriteInvalidatesHalo) {
  Program P("invalidate");
  const Region *R = P.regionFromExtents({8, 8});
  ArraySymbol *A = P.makeArray("A", 2);
  ArraySymbol *B = P.makeArray("B", 2);
  ArraySymbol *C = P.makeArray("C", 2);
  P.assign(R, B, aref(A, {0, 1})); // needs halo
  P.assign(R, A, aref(B));         // rewrites A
  P.assign(R, C, aref(A, {0, 1})); // needs a fresh halo
  ASDG G = ASDG::build(P);
  auto LP = scalarize::scalarizeWithStrategy(G, Strategy::Baseline);
  CommPlan Plan = insertLoopLevelComm(LP);
  EXPECT_EQ(Plan.Exchanges, 2u);
  EXPECT_EQ(Plan.RedundantElided, 0u);
}

TEST(LoopLevelCommTest, ContractedArraysNeverCommunicate) {
  // With c2, the temporary's references are loop-local scalars; only the
  // offset reads of persistent arrays need halos.
  Program P("contracted");
  const Region *R = P.regionFromExtents({8, 8});
  ArraySymbol *A = P.makeArray("A", 2);
  ArraySymbol *T = P.makeUserTemp("T", 2);
  ArraySymbol *C = P.makeArray("C", 2);
  P.assign(R, T, aref(A, {1, 0}));
  P.assign(R, C, aref(T));
  ASDG G = ASDG::build(P);
  auto LP = scalarize::scalarizeWithStrategy(G, Strategy::C2);
  CommPlan Plan = insertLoopLevelComm(LP);
  EXPECT_EQ(Plan.Exchanges, 1u); // only A's halo
  const auto *Comm = dyn_cast<CommOp>(LP.nodes()[0].get());
  ASSERT_NE(Comm, nullptr);
  EXPECT_EQ(Comm->Array->getName(), "A");
}

TEST(ArrayLevelCommTest, PipelinedSplitsSendAndRecv) {
  Program P("pipelined");
  const Region *R = P.regionFromExtents({8, 8});
  ArraySymbol *A = P.makeArray("A", 2);
  ArraySymbol *B = P.makeArray("B", 2);
  ArraySymbol *C = P.makeArray("C", 2);
  ArraySymbol *D = P.makeArray("D", 2);
  P.assign(R, A, aref(B));         // S0: produce A
  P.assign(R, C, aref(D));         // S1: independent work (overlap window)
  P.assign(R, D, aref(A, {0, 1})); // S2: consume A's halo
  CommPlan Plan = insertArrayLevelComm(P, /*Pipelined=*/true);
  EXPECT_EQ(Plan.Exchanges, 1u);
  ASSERT_EQ(P.numStmts(), 5u);
  // send right after the producer, recv right before the consumer.
  EXPECT_EQ(P.getStmt(1)->str(), "comm.send A@(0,1);");
  EXPECT_EQ(P.getStmt(3)->str(), "comm.recv A@(0,1);");
  EXPECT_TRUE(isWellFormed(P));
}

TEST(ArrayLevelCommTest, LiveInArrayHaloSentUpFront) {
  Program P("livein");
  const Region *R = P.regionFromExtents({8, 8});
  ArraySymbol *A = P.makeArray("A", 2); // live-in, never written
  ArraySymbol *B = P.makeArray("B", 2);
  P.assign(R, B, aref(A, {-1, 0}));
  insertArrayLevelComm(P, /*Pipelined=*/true);
  ASSERT_EQ(P.numStmts(), 3u);
  EXPECT_EQ(P.getStmt(0)->str(), "comm.send A@(-1,0);");
  EXPECT_EQ(P.getStmt(1)->str(), "comm.recv A@(-1,0);");
}

TEST(ArrayLevelCommTest, CommStatementsSurviveFusion) {
  // With communication inserted at the array level first, the exchange
  // statements participate in the ASDG as unfusable singletons, and the
  // strategies must still produce valid partitions around them.
  Program Q("favorcomm2");
  const Region *R2 = Q.regionFromExtents({8, 8});
  ArraySymbol *QA = Q.makeArray("A", 2);
  ArraySymbol *QT = Q.makeUserTemp("T", 2);
  ArraySymbol *QB = Q.makeArray("B", 2);
  ArraySymbol *QC = Q.makeArray("C", 2);
  Q.assign(R2, QT, aref(QA, {0, 1})); // needs A's halo
  Q.assign(R2, QB, aref(QT));         // consumes T aligned
  Q.assign(R2, QC, aref(QB, {1, 0})); // needs B's halo later

  // Favor fusion: T contracts.
  {
    ASDG G = ASDG::build(Q);
    StrategyResult SR = applyStrategy(G, Strategy::C2);
    ASSERT_EQ(SR.Contracted.size(), 1u);
    EXPECT_EQ(SR.Contracted[0]->getName(), "T");
  }

  // Favor communication: exchanges become ASDG nodes. The partition must
  // stay valid, comm statements must stay in singleton clusters, and no
  // array touched by a communication statement may be contracted.
  insertArrayLevelComm(Q, /*Pipelined=*/true);
  EXPECT_TRUE(isWellFormed(Q));
  ASDG G2 = ASDG::build(Q);
  StrategyResult SR2 = applyStrategy(G2, Strategy::C2);
  EXPECT_TRUE(isValidPartition(SR2.Partition));
  for (unsigned I = 0; I < Q.numStmts(); ++I) {
    if (isa<CommStmt>(Q.getStmt(I))) {
      EXPECT_EQ(SR2.Partition.members(SR2.Partition.clusterOf(I)).size(), 1u);
    }
  }
  for (const ArraySymbol *Arr : SR2.Contracted)
    EXPECT_NE(Arr->getName(), "A");
}

} // namespace

//===- tests/OffsetRegionTest.cpp - Offset and Region unit tests -----------===//

#include "ir/Offset.h"
#include "ir/Region.h"

#include <gtest/gtest.h>

using namespace alf::ir;

TEST(OffsetTest, ZeroConstruction) {
  Offset Z = Offset::zero(3);
  EXPECT_EQ(Z.rank(), 3u);
  EXPECT_TRUE(Z.isZero());
  EXPECT_EQ(Z.str(), "@0");
}

TEST(OffsetTest, ElementAccessAndMutation) {
  Offset O{1, -2, 0};
  EXPECT_EQ(O[0], 1);
  EXPECT_EQ(O[1], -2);
  EXPECT_EQ(O[2], 0);
  EXPECT_FALSE(O.isZero());
  O[1] = 0;
  O[0] = 0;
  EXPECT_TRUE(O.isZero());
}

TEST(OffsetTest, SubtractionMatchesPaperUDVExamples) {
  // Paper section 2.2: (0,0)-(0,-1) = (0,1); (0,0)-(-1,1) = (1,-1);
  // (-1,0)-(0,0) = (-1,0).
  Offset Zero = Offset::zero(2);
  EXPECT_EQ(Zero - Offset({0, -1}), Offset({0, 1}));
  EXPECT_EQ(Zero - Offset({-1, 1}), Offset({1, -1}));
  EXPECT_EQ(Offset({-1, 0}) - Zero, Offset({-1, 0}));
}

TEST(OffsetTest, Addition) {
  EXPECT_EQ(Offset({1, 2}) + Offset({-1, 3}), Offset({0, 5}));
}

TEST(OffsetTest, PrintingNonZero) {
  EXPECT_EQ(Offset({-1, 1}).str(), "@(-1,1)");
  EXPECT_EQ(Offset({2}).str(), "@(2)");
}

TEST(OffsetTest, Ordering) {
  EXPECT_LT(Offset({0, 1}), Offset({1, 0}));
  EXPECT_LT(Offset({-1, 0}), Offset({0, 0}));
}

TEST(RegionTest, FromExtents) {
  Region R = Region::fromExtents({4, 6});
  EXPECT_EQ(R.rank(), 2u);
  EXPECT_EQ(R.lo(0), 1);
  EXPECT_EQ(R.hi(0), 4);
  EXPECT_EQ(R.lo(1), 1);
  EXPECT_EQ(R.hi(1), 6);
  EXPECT_EQ(R.extent(0), 4);
  EXPECT_EQ(R.extent(1), 6);
  EXPECT_EQ(R.size(), 24);
}

TEST(RegionTest, ExplicitBounds) {
  Region R({2, 0}, {5, 3});
  EXPECT_EQ(R.extent(0), 4);
  EXPECT_EQ(R.extent(1), 4);
  EXPECT_EQ(R.size(), 16);
  EXPECT_EQ(R.str(), "[2..5,0..3]");
}

TEST(RegionTest, Equality) {
  EXPECT_EQ(Region::fromExtents({3, 3}), Region::fromExtents({3, 3}));
  EXPECT_NE(Region::fromExtents({3, 3}), Region::fromExtents({3, 4}));
  EXPECT_NE(Region::fromExtents({4}), Region({2}, {5}));
}

TEST(RegionTest, RankOne) {
  Region R = Region::fromExtents({10});
  EXPECT_EQ(R.rank(), 1u);
  EXPECT_EQ(R.size(), 10);
  EXPECT_EQ(R.str(), "[1..10]");
}

TEST(RegionTest, RankThree) {
  Region R = Region::fromExtents({2, 3, 4});
  EXPECT_EQ(R.rank(), 3u);
  EXPECT_EQ(R.size(), 24);
}

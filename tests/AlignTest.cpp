//===- tests/AlignTest.cpp - Alignment canonicalization tests ----------------===//

#include "ir/Align.h"

#include "analysis/ASDG.h"
#include "ir/Generator.h"
#include "exec/Interpreter.h"
#include "ir/Normalize.h"
#include "ir/Verifier.h"
#include "scalarize/Scalarize.h"
#include "xform/Report.h"
#include "xform/Strategy.h"

#include <gtest/gtest.h>

using namespace alf;
using namespace alf::analysis;
using namespace alf::exec;
using namespace alf::ir;
using namespace alf::xform;

namespace {

TEST(AlignTest, CanonicalizesTargetOffset) {
  Program P("align");
  const Region *R = P.regionFromExtents({8, 8});
  ArraySymbol *A = P.makeArray("A", 2);
  ArraySymbol *B = P.makeArray("B", 2);
  P.assign(R, A, Offset({1, 0}), add(aref(B, {1, -1}), cst(2.0)));
  EXPECT_EQ(alignProgram(P), 1u);
  EXPECT_EQ(P.getStmt(0)->str(), "[2..9,1..8] A := (B@(0,-1) + 2);");
  EXPECT_TRUE(isWellFormed(P));
}

TEST(AlignTest, LeavesAlignedStatementsAlone) {
  Program P("noop");
  const Region *R = P.regionFromExtents({8});
  ArraySymbol *A = P.makeArray("A", 1);
  ArraySymbol *B = P.makeArray("B", 1);
  P.assign(R, B, aref(A, {-1}));
  EXPECT_EQ(alignProgram(P), 0u);
  EXPECT_EQ(P.getStmt(0)->str(), "[1..8] B := A@(-1);");
}

TEST(AlignTest, PreservesSemantics) {
  auto Build = [](bool Align) {
    auto P = std::make_unique<Program>("sem");
    const Region *R = P->regionFromExtents({6, 6});
    ArraySymbol *A = P->makeArray("A", 2);
    ArraySymbol *B = P->makeArray("B", 2);
    ArraySymbol *C = P->makeArray("C", 2);
    P->assign(R, B, Offset({0, 1}), mul(aref(A, {0, 1}), cst(0.5)));
    P->assign(R, C, aref(B, {0, 1}));
    if (Align)
      alignProgram(*P);
    return P;
  };
  auto P1 = Build(false);
  auto P2 = Build(true);
  ASDG G1 = ASDG::build(*P1);
  ASDG G2 = ASDG::build(*P2);
  auto L1 = scalarize::scalarizeWithStrategy(G1, Strategy::Baseline);
  auto L2 = scalarize::scalarizeWithStrategy(G2, Strategy::Baseline);
  std::string Why;
  EXPECT_TRUE(resultsMatch(run(L1, 3), run(L2, 3), 0.0, &Why)) << Why;
}

TEST(AlignTest, EnablesFusionAcrossDecompositions) {
  // Two statements computing over the same elements of their outputs but
  // decomposed differently: as written, their regions differ and fusion
  // is blocked; aligned, they fuse and T contracts.
  auto Build = [] {
    auto P = std::make_unique<Program>("fusealign");
    const Region *R1 = P->regionFromExtents({8, 8});
    const Region *R0 =
        P->internRegion(Region({0, 1}, {7, 8})); // R1 shifted by (-1,0)
    ArraySymbol *A = P->makeArray("A", 2);
    ArraySymbol *T = P->makeUserTemp("T", 2);
    ArraySymbol *B = P->makeArray("B", 2);
    // [R0] T@(1,0) := A@(1,0)  ==  [R1] T := A
    P->assign(R0, T, Offset({1, 0}), aref(A, {1, 0}));
    P->assign(R1, B, aref(T));
    return P;
  };

  {
    auto P = Build();
    ASDG G = ASDG::build(*P);
    StrategyResult SR = applyStrategy(G, Strategy::C2);
    EXPECT_TRUE(SR.Contracted.empty()) << "regions differ as written";
  }
  {
    auto P = Build();
    EXPECT_EQ(alignProgram(*P), 1u);
    ASDG G = ASDG::build(*P);
    StrategyResult SR = applyStrategy(G, Strategy::C2);
    ASSERT_EQ(SR.Contracted.size(), 1u);
    EXPECT_EQ(SR.Contracted[0]->getName(), "T");
  }
}

TEST(ReportTest, ExplainsEveryOutcome) {
  Program P("report");
  const Region *R = P.regionFromExtents({8});
  ArraySymbol *A = P.makeArray("A", 1);        // live-out
  ArraySymbol *T = P.makeUserTemp("T", 1);     // contracted
  ArraySymbol *Sh = P.makeUserTemp("Sh", 1);   // carried distance
  ArraySymbol *Ro = P.makeArray("Ro", 1);      // read-only... live-out too
  ArrayOpts UpOpts;
  UpOpts.LiveOut = false;
  ArraySymbol *Up = P.makeArray("Up", 1, UpOpts); // upward-exposed
  ArraySymbol *Op = P.makeUserTemp("Op", 1);   // referenced by opaque

  P.assign(R, T, aref(Ro));
  P.assign(R, A, add(aref(T), aref(Up)));
  P.assign(R, Up, aref(Ro));
  P.assign(R, Sh, aref(Ro));
  P.assign(R, A, aref(Sh, {1}));
  P.assign(R, Op, aref(Ro));
  P.opaque("sink", R, {Op}, {});

  ASDG G = ASDG::build(P);
  StrategyResult SR = applyStrategy(G, Strategy::C2);

  auto Classify = [&](const char *Name) {
    return classifyContraction(SR, cast<ArraySymbol>(P.findSymbol(Name)));
  };
  EXPECT_EQ(Classify("T"), ContractionOutcome::Contracted);
  EXPECT_EQ(Classify("A"), ContractionOutcome::LiveOut);
  EXPECT_EQ(Classify("Up"), ContractionOutcome::UpwardExposed);
  EXPECT_EQ(Classify("Sh"), ContractionOutcome::CarriedDistance);
  EXPECT_EQ(Classify("Op"), ContractionOutcome::UnfusableRef);

  std::string Report = contractionReport(SR);
  EXPECT_NE(Report.find("carries distance"), std::string::npos);
  EXPECT_NE(Report.find("contracted"), std::string::npos);
  EXPECT_NE(Report.find("observable after the fragment"), std::string::npos);
}

TEST(ReportTest, SplitClustersOutcome) {
  // T's references have null distances but land in nests with different
  // regions, so fusion (and contraction) is impossible.
  Program P("split");
  const Region *R1 = P.regionFromExtents({8});
  const Region *R2 = P.regionFromExtents({6});
  ArraySymbol *A = P.makeArray("A", 1);
  ArraySymbol *T = P.makeUserTemp("T", 1);
  ArraySymbol *B = P.makeArray("B", 1);
  P.assign(R1, T, aref(A));
  P.assign(R2, B, aref(T));
  ASDG G = ASDG::build(P);
  StrategyResult SR = applyStrategy(G, Strategy::C2);
  std::string Detail;
  EXPECT_EQ(classifyContraction(SR, T, &Detail),
            ContractionOutcome::SplitClusters);
  EXPECT_NE(Detail.find("2 separate loop nests"), std::string::npos);
}

TEST(ReportTest, ReadOnlyOutcome) {
  Program P("ro");
  const Region *R = P.regionFromExtents({8});
  ArrayOpts Opts;
  Opts.LiveOut = false;
  ArraySymbol *In = P.makeArray("In", 1, Opts); // live-in, read only
  ArraySymbol *B = P.makeArray("B", 1);
  P.assign(R, B, aref(In));
  ASDG G = ASDG::build(P);
  StrategyResult SR = applyStrategy(G, Strategy::C2);
  EXPECT_EQ(classifyContraction(SR, In), ContractionOutcome::ReadOnly);
}

/// Property sweep: aligning a random program with offset targets, then
/// normalizing and optimizing, preserves the unaligned program's
/// semantics under every strategy.
class AlignEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AlignEquivalence, RandomProgramsWithOffsetTargets) {
  GeneratorConfig Cfg;
  Cfg.Seed = GetParam();
  Cfg.NumStmts = 5 + static_cast<unsigned>(GetParam() % 6);
  Cfg.Extent = 7;
  Cfg.AllowTargetOffsets = true;

  auto P1 = generateRandomProgram(Cfg);
  auto P2 = generateRandomProgram(Cfg);
  normalizeProgram(*P1); // unaligned reference pipeline
  alignProgram(*P2);
  normalizeProgram(*P2);
  ASSERT_TRUE(isWellFormed(*P2));

  ASDG G1 = ASDG::build(*P1);
  ASDG G2 = ASDG::build(*P2);
  auto Base = scalarize::scalarizeWithStrategy(G1, Strategy::Baseline);
  exec::RunResult BaseRes = exec::run(Base, GetParam() ^ 0xa11);
  for (Strategy S : allStrategiesForTest()) {
    auto LP = scalarize::scalarizeWithStrategy(G2, S);
    std::string Why;
    EXPECT_TRUE(exec::resultsMatch(BaseRes, exec::run(LP, GetParam() ^ 0xa11),
                                   0.0, &Why))
        << "seed " << GetParam() << " under " << getStrategyName(S) << ": "
        << Why;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlignEquivalence,
                         ::testing::Range<uint64_t>(1, 21));

} // namespace

//===- tests/ServeTest.cpp - serving-layer tests ----------------------------===//
//
// The alfd serving stack bottom-up: TaskQueue drain semantics, wire
// protocol framing (including every malformed-input classification),
// KernelCache single-flight under a thundering herd, the JitEngine's
// per-hash single-flight, and an in-process Server driven end to end
// over a real Unix-domain socket.
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"
#include "serve/KernelCache.h"
#include "serve/Protocol.h"
#include "serve/Server.h"

#include "driver/Pipeline.h"
#include "exec/NativeJit.h"
#include "frontend/Parser.h"
#include "obs/Obs.h"
#include "support/Statistic.h"
#include "support/ThreadPool.h"
#include "support/Ulp.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace alf;
using namespace alf::serve;

namespace {

//===----------------------------------------------------------------------===//
// TaskQueue
//===----------------------------------------------------------------------===//

TEST(TaskQueueTest, DrainsEveryJobOnDestruction) {
  std::atomic<unsigned> Ran{0};
  {
    TaskQueue Q(2);
    for (unsigned I = 0; I < 64; ++I)
      Q.submit([&Ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        Ran.fetch_add(1);
      });
    // Destruction must block until all 64 have run, not drop the queue.
  }
  EXPECT_EQ(Ran.load(), 64u);
}

TEST(TaskQueueTest, SubmitFromInsideAJob) {
  std::atomic<unsigned> Ran{0};
  {
    TaskQueue Q(1);
    Q.submit([&] {
      Ran.fetch_add(1);
      Q.submit([&Ran] { Ran.fetch_add(1); });
    });
  }
  EXPECT_EQ(Ran.load(), 2u);
}

//===----------------------------------------------------------------------===//
// Protocol framing
//===----------------------------------------------------------------------===//

/// A connected socket pair; [0] is "ours", [1] the peer's.
struct SocketPair {
  int Fds[2] = {-1, -1};
  SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0); }
  ~SocketPair() {
    closeA();
    closeB();
  }
  void closeA() {
    if (Fds[0] >= 0)
      ::close(Fds[0]);
    Fds[0] = -1;
  }
  void closeB() {
    if (Fds[1] >= 0)
      ::close(Fds[1]);
    Fds[1] = -1;
  }
};

/// Writes a raw frame with an explicit length prefix (which may lie
/// about the payload, unlike writeFrame).
void writeRaw(int Fd, uint32_t Len, const std::string &Payload) {
  uint8_t Hdr[4] = {static_cast<uint8_t>(Len >> 24),
                    static_cast<uint8_t>(Len >> 16),
                    static_cast<uint8_t>(Len >> 8),
                    static_cast<uint8_t>(Len)};
  ASSERT_EQ(::write(Fd, Hdr, 4), 4);
  if (!Payload.empty()) {
    ASSERT_EQ(::write(Fd, Payload.data(),
                      static_cast<ssize_t>(Payload.size())),
              static_cast<ssize_t>(Payload.size()));
  }
}

TEST(ProtocolTest, RoundTrip) {
  SocketPair SP;
  json::Value Req = json::Value::object();
  Req.set("op", json::Value::str("health"));
  Req.set("n", json::Value::number(42));
  ASSERT_TRUE(writeFrame(SP.Fds[0], Req));

  json::Value Out;
  EXPECT_EQ(readFrame(SP.Fds[1], DefaultMaxFrameBytes, Out), FrameRead::Ok);
  EXPECT_EQ(Out.getString("op").value_or(""), "health");
  EXPECT_EQ(Out.getNumber("n").value_or(0), 42);
}

TEST(ProtocolTest, BackToBackFramesStayInSync) {
  SocketPair SP;
  for (unsigned I = 0; I < 4; ++I) {
    json::Value V = json::Value::object();
    V.set("i", json::Value::number(I));
    ASSERT_TRUE(writeFrame(SP.Fds[0], V));
  }
  for (unsigned I = 0; I < 4; ++I) {
    json::Value Out;
    ASSERT_EQ(readFrame(SP.Fds[1], DefaultMaxFrameBytes, Out),
              FrameRead::Ok);
    EXPECT_EQ(Out.getNumber("i").value_or(-1), I);
  }
}

TEST(ProtocolTest, CleanEofOnFrameBoundary) {
  SocketPair SP;
  SP.closeA();
  json::Value Out;
  EXPECT_EQ(readFrame(SP.Fds[1], DefaultMaxFrameBytes, Out), FrameRead::Eof);
}

TEST(ProtocolTest, OversizedLengthPrefixIsTooLarge) {
  SocketPair SP;
  writeRaw(SP.Fds[0], 1024 + 1, "");
  json::Value Out;
  std::string Why;
  EXPECT_EQ(readFrame(SP.Fds[1], /*MaxBytes=*/1024, Out, &Why),
            FrameRead::TooLarge);
  EXPECT_FALSE(Why.empty());
}

TEST(ProtocolTest, ZeroLengthFrameIsMalformed) {
  SocketPair SP;
  writeRaw(SP.Fds[0], 0, "");
  json::Value Out;
  EXPECT_EQ(readFrame(SP.Fds[1], DefaultMaxFrameBytes, Out),
            FrameRead::Malformed);
}

TEST(ProtocolTest, NonJsonPayloadIsMalformed) {
  SocketPair SP;
  const std::string Garbage = "hello?";
  writeRaw(SP.Fds[0], static_cast<uint32_t>(Garbage.size()), Garbage);
  json::Value Out;
  EXPECT_EQ(readFrame(SP.Fds[1], DefaultMaxFrameBytes, Out),
            FrameRead::Malformed);
}

TEST(ProtocolTest, NonObjectRootIsMalformed) {
  SocketPair SP;
  const std::string Arr = "[1, 2, 3]";
  writeRaw(SP.Fds[0], static_cast<uint32_t>(Arr.size()), Arr);
  json::Value Out;
  EXPECT_EQ(readFrame(SP.Fds[1], DefaultMaxFrameBytes, Out),
            FrameRead::Malformed);
}

TEST(ProtocolTest, TruncatedPayloadIsIoError) {
  SocketPair SP;
  writeRaw(SP.Fds[0], 64, "only-a-little"); // promises 64, delivers 13
  SP.closeA();
  json::Value Out;
  EXPECT_EQ(readFrame(SP.Fds[1], DefaultMaxFrameBytes, Out),
            FrameRead::IoError);
}

//===----------------------------------------------------------------------===//
// KernelCache single-flight
//===----------------------------------------------------------------------===//

CompileKey keyFor(uint64_t Hash) {
  CompileKey K;
  K.ProgramHash = Hash;
  return K;
}

TEST(KernelCacheTest, ThunderingHerdCompilesOnce) {
  KernelCache Cache(/*NumShards=*/4);
  std::atomic<unsigned> Compiles{0};
  const unsigned NumThreads = 16;

  std::vector<std::shared_ptr<const CompiledEntry>> Entries(NumThreads);
  std::vector<CacheOutcome> Outcomes(NumThreads, CacheOutcome::Hit);
  std::vector<std::thread> Threads;
  Threads.reserve(NumThreads);
  for (unsigned I = 0; I < NumThreads; ++I)
    Threads.emplace_back([&, I] {
      Entries[I] = Cache.get(
          keyFor(7), [&Compiles] {
            Compiles.fetch_add(1);
            // Long enough that the herd piles up behind the slot.
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            CompiledEntry E;
            E.OK = true;
            E.NumClusters = 3;
            return E;
          },
          &Outcomes[I]);
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Compiles.load(), 1u);
  unsigned Misses = 0;
  for (unsigned I = 0; I < NumThreads; ++I) {
    ASSERT_TRUE(Entries[I]);
    // Everyone shares the one published entry object.
    EXPECT_EQ(Entries[I].get(), Entries[0].get());
    Misses += Outcomes[I] == CacheOutcome::Miss;
  }
  EXPECT_EQ(Misses, 1u);
  KernelCache::Stats S = Cache.stats();
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Hits + S.Coalesced, NumThreads - 1);
}

TEST(KernelCacheTest, DistinctKeysCompileIndependently) {
  KernelCache Cache;
  std::atomic<unsigned> Compiles{0};
  auto Fn = [&Compiles] {
    Compiles.fetch_add(1);
    CompiledEntry E;
    E.OK = true;
    return E;
  };
  Cache.get(keyFor(1), Fn);
  Cache.get(keyFor(2), Fn);
  CompileKey K = keyFor(1);
  K.Strat = xform::Strategy::Baseline; // same program, different strategy
  Cache.get(K, Fn);
  EXPECT_EQ(Compiles.load(), 3u);
  EXPECT_EQ(Cache.size(), 3u);
}

TEST(KernelCacheTest, FailedCompilesAreNegativelyCached) {
  KernelCache Cache;
  std::atomic<unsigned> Compiles{0};
  auto Fn = [&Compiles] {
    Compiles.fetch_add(1);
    CompiledEntry E;
    E.OK = false;
    E.ErrorCode = "parse";
    E.ErrorMessage = "1:1: nope";
    return E;
  };
  CacheOutcome O1, O2;
  auto E1 = Cache.get(keyFor(9), Fn, &O1);
  auto E2 = Cache.get(keyFor(9), Fn, &O2);
  EXPECT_EQ(Compiles.load(), 1u) << "a broken program must not re-parse";
  EXPECT_EQ(O1, CacheOutcome::Miss);
  EXPECT_EQ(O2, CacheOutcome::Hit);
  ASSERT_TRUE(E2);
  EXPECT_FALSE(E2->OK);
  EXPECT_EQ(E2->ErrorCode, "parse");
  EXPECT_EQ(E1.get(), E2.get());
}

TEST(KernelCacheTest, MissesRunOnTheDispatchQueue) {
  TaskQueue Q(1);
  KernelCache Cache(/*NumShards=*/2, &Q);
  std::thread::id CompileTid;
  auto E = Cache.get(keyFor(3), [&CompileTid] {
    CompileTid = std::this_thread::get_id();
    CompiledEntry En;
    En.OK = true;
    return En;
  });
  ASSERT_TRUE(E);
  EXPECT_TRUE(E->OK);
  EXPECT_NE(CompileTid, std::this_thread::get_id())
      << "compile should have run on the queue worker, not the caller";
}

//===----------------------------------------------------------------------===//
// JitEngine single-flight
//===----------------------------------------------------------------------===//

const char *JitHerdSource = R"(
region R : [1..16, 1..16];
array U, V : R;
array T : R temp;
scalar s;
[R] T := (U@(-1,0) + U@(1,0) + U@(0,-1) + U@(0,1)) * 0.25 - U;
[R] V := U + T * 0.8;
[R] s := + << abs(T);
)";

TEST(JitSingleFlightTest, HerdOfIdenticalKernelsCompilesOnce) {
  if (!exec::JitEngine::compilerAvailable())
    GTEST_SKIP() << "no system C compiler";

  frontend::ParseResult PR =
      frontend::parseProgram(JitHerdSource, "<herd>");
  ASSERT_TRUE(PR.succeeded());
  driver::Pipeline PL(*PR.Prog);
  driver::CompileStatus St = PL.tryCompile(driver::CompileRequest());
  ASSERT_TRUE(St.ok());

  char Tmpl[] = "/tmp/alf-servetest-jit-XXXXXX";
  ASSERT_NE(mkdtemp(Tmpl), nullptr);
  exec::JitOptions JO;
  JO.CacheDir = Tmpl;
  exec::JitEngine Jit(JO);

  uint64_t CompilesBefore = getStatisticValue("jit", "NumJitCompiles");
  const unsigned NumThreads = 8;
  std::vector<exec::RunResult> Results(NumThreads);
  std::vector<exec::JitRunInfo> Infos(NumThreads);
  std::vector<std::thread> Threads;
  for (unsigned I = 0; I < NumThreads; ++I)
    Threads.emplace_back([&, I] {
      Results[I] = Jit.run(St.Artifact->LP, /*Seed=*/11, &Infos[I]);
    });
  for (std::thread &T : Threads)
    T.join();

  unsigned Compiled = 0;
  for (unsigned I = 0; I < NumThreads; ++I) {
    EXPECT_TRUE(Infos[I].UsedJit) << Infos[I].FallbackReason;
    Compiled += Infos[I].Compiled;
    // Bit-identical across every thread of the herd.
    EXPECT_EQ(Results[I].ScalarsOut, Results[0].ScalarsOut);
    EXPECT_EQ(Results[I].LiveOut, Results[0].LiveOut);
  }
  EXPECT_EQ(Compiled, 1u) << "exactly one thread may invoke the compiler";
  EXPECT_EQ(getStatisticValue("jit", "NumJitCompiles") - CompilesBefore, 1u);

  std::error_code EC;
  std::filesystem::remove_all(Tmpl, EC);
}

//===----------------------------------------------------------------------===//
// Server end to end
//===----------------------------------------------------------------------===//

class ServerTest : public ::testing::Test {
protected:
  void SetUp() override {
    char Tmpl[] = "/tmp/alf-servetest-XXXXXX";
    ASSERT_NE(mkdtemp(Tmpl), nullptr);
    Dir = Tmpl;
    ServerOptions SO;
    SO.SocketPath = Dir + "/alfd.sock";
    SO.CompileThreads = 2;
    SO.MaxProgramBytes = 64 * 1024;
    Srv = std::make_unique<Server>(std::move(SO));
    std::string Error;
    ASSERT_TRUE(Srv->start(&Error)) << Error;
  }

  void TearDown() override {
    Srv->stop();
    Srv->wait();
    Srv.reset();
    std::error_code EC;
    std::filesystem::remove_all(Dir, EC);
  }

  json::Value roundTrip(const json::Value &Req) {
    Client C;
    std::string Error;
    EXPECT_TRUE(C.connect(Srv->options().SocketPath, &Error)) << Error;
    json::Value Resp;
    EXPECT_TRUE(C.request(Req, Resp, &Error)) << Error;
    return Resp;
  }

  std::string Dir;
  std::unique_ptr<Server> Srv;
};

const char *ServerSource = R"(
region R : [1..12, 1..12];
array U, V : R;
array T : R temp;
scalar s;
[R] T := (U@(-1,0) + U@(1,0) + U@(0,-1) + U@(0,1)) * 0.25 - U;
[R] V := U + T * 0.8;
[R] s := + << abs(T);
)";

TEST_F(ServerTest, Health) {
  json::Value Resp = roundTrip(Client::makeHealth());
  EXPECT_EQ(Resp.getBool("ok").value_or(false), true);
  EXPECT_EQ(Resp.getString("service").value_or(""), "alfd");
  EXPECT_EQ(Resp.getNumber("protocol").value_or(0), ProtocolVersion);
}

TEST_F(ServerTest, UnknownOpIsStructured) {
  json::Value Req = json::Value::object();
  Req.set("op", json::Value::str("frobnicate"));
  json::Value Resp = roundTrip(Req);
  EXPECT_EQ(Resp.getBool("ok").value_or(true), false);
  EXPECT_EQ(Resp.getString("error").value_or(""), "unknown-op");
}

TEST_F(ServerTest, CompileMissThenHit) {
  json::Value First = roundTrip(Client::makeCompile(ServerSource, "c2"));
  ASSERT_EQ(First.getBool("ok").value_or(false), true)
      << First.getString("message").value_or("");
  EXPECT_EQ(First.getString("cache").value_or(""), "miss");
  EXPECT_EQ(First.getString("strategy").value_or(""), "c2");
  EXPECT_GE(First.getNumber("clusters").value_or(0), 1);
  const json::Value *Contracted = First.get("contracted");
  ASSERT_NE(Contracted, nullptr);
  ASSERT_TRUE(Contracted->isArray());
  ASSERT_EQ(Contracted->size(), 1u);
  EXPECT_EQ(Contracted->items()[0].asString(), "T");

  json::Value Second = roundTrip(Client::makeCompile(ServerSource, "c2"));
  EXPECT_EQ(Second.getString("cache").value_or(""), "hit");

  // A different strategy is a different cache key.
  json::Value Third =
      roundTrip(Client::makeCompile(ServerSource, "baseline"));
  EXPECT_EQ(Third.getString("cache").value_or(""), "miss");
}

TEST_F(ServerTest, ExecuteIsDeterministic) {
  json::Value A =
      roundTrip(Client::makeExecute(ServerSource, "c2", "", "", 7));
  json::Value B =
      roundTrip(Client::makeExecute(ServerSource, "c2", "", "", 7));
  ASSERT_EQ(A.getBool("ok").value_or(false), true)
      << A.getString("message").value_or("");
  ASSERT_EQ(B.getBool("ok").value_or(false), true);
  const json::Value *SA = A.get("scalars");
  const json::Value *SB = B.get("scalars");
  ASSERT_NE(SA, nullptr);
  ASSERT_NE(SB, nullptr);
  ASSERT_TRUE(SA->getNumber("s").has_value());
  EXPECT_EQ(*SA->getNumber("s"), *SB->getNumber("s"));
  const json::Value *Arrays = A.get("arrays");
  ASSERT_NE(Arrays, nullptr);
  ASSERT_NE(Arrays->get("V"), nullptr);
  EXPECT_EQ(Arrays->get("V")->getNumber("elements").value_or(0), 12 * 12);
}

TEST_F(ServerTest, ParseErrorIsStructuredAndNegativelyCached) {
  const std::string Broken = "region R : [1..4];\n[R] X := nonsense;\n";
  json::Value First = roundTrip(Client::makeCompile(Broken));
  EXPECT_EQ(First.getBool("ok").value_or(true), false);
  EXPECT_EQ(First.getString("error").value_or(""), "parse");
  EXPECT_FALSE(First.getString("message").value_or("").empty());

  // The second submission is served from the negative cache.
  json::Value Second = roundTrip(Client::makeCompile(Broken));
  EXPECT_EQ(Second.getString("error").value_or(""), "parse");

  json::Value Stats = roundTrip(Client::makeStats());
  const json::Value *CacheV = Stats.get("cache");
  ASSERT_NE(CacheV, nullptr);
  EXPECT_GE(CacheV->getNumber("hits").value_or(0), 1);
}

TEST_F(ServerTest, UnknownStrategyIsMalformed) {
  json::Value Resp =
      roundTrip(Client::makeCompile(ServerSource, "bogus-strategy"));
  EXPECT_EQ(Resp.getBool("ok").value_or(true), false);
  EXPECT_EQ(Resp.getString("error").value_or(""), "malformed");
}

TEST_F(ServerTest, SemiringOverrideIsItsOwnCacheKey) {
  json::Value Plain = roundTrip(Client::makeExecute(ServerSource, "c2"));
  ASSERT_EQ(Plain.getBool("ok").value_or(false), true)
      << Plain.getString("message").value_or("");
  EXPECT_EQ(Plain.getString("cache").value_or(""), "miss");

  // Same source text under a min-plus override: a distinct artifact, so
  // a distinct cache entry — and a fold that computes min, not sum.
  json::Value MinPlus = roundTrip(
      Client::makeExecute(ServerSource, "c2", "", "", 0, "min-plus"));
  ASSERT_EQ(MinPlus.getBool("ok").value_or(false), true)
      << MinPlus.getString("message").value_or("");
  EXPECT_EQ(MinPlus.getString("cache").value_or(""), "miss");

  const json::Value *SP = Plain.get("scalars");
  const json::Value *SM = MinPlus.get("scalars");
  ASSERT_NE(SP, nullptr);
  ASSERT_NE(SM, nullptr);
  ASSERT_TRUE(SP->getNumber("s").has_value());
  ASSERT_TRUE(SM->getNumber("s").has_value());
  EXPECT_NE(*SP->getNumber("s"), *SM->getNumber("s"))
      << "the min-plus request must not be served the plus-times artifact";

  // Both keys are now independently warm.
  EXPECT_EQ(roundTrip(Client::makeExecute(ServerSource, "c2", "", "", 0,
                                          "min-plus"))
                .getString("cache")
                .value_or(""),
            "hit");

  json::Value Bad =
      roundTrip(Client::makeCompile(ServerSource, "", "", "", "no-such"));
  EXPECT_EQ(Bad.getBool("ok").value_or(true), false);
  EXPECT_EQ(Bad.getString("error").value_or(""), "malformed");
}

// One program, two jit tiers. ExecMode is part of the CompileKey, so
// the scalar-jit and vectorizing-jit artifacts are distinct cache
// entries — the daemon must never serve one tier the other's kernel —
// and each key warms independently. The jit-simd response additionally
// reports the vectorizer's outcome, which clients use to pick their
// comparison tolerance.
TEST_F(ServerTest, JitAndJitSimdAreDistinctCacheEntriesBothWarm) {
  if (!exec::JitEngine::compilerAvailable())
    GTEST_SKIP() << "no system C compiler";

  json::Value Jit =
      roundTrip(Client::makeExecute(ServerSource, "c2", "jit", "", 7));
  ASSERT_EQ(Jit.getBool("ok").value_or(false), true)
      << Jit.getString("message").value_or("");
  EXPECT_EQ(Jit.getString("cache").value_or(""), "miss");
  const json::Value *JI = Jit.get("jit");
  ASSERT_NE(JI, nullptr);
  EXPECT_EQ(JI->getBool("used_jit").value_or(false), true);
  EXPECT_EQ(JI->get("vectorized_nests"), nullptr)
      << "scalar tier must not report vectorizer fields";

  json::Value Simd =
      roundTrip(Client::makeExecute(ServerSource, "c2", "jit-simd", "", 7));
  ASSERT_EQ(Simd.getBool("ok").value_or(false), true)
      << Simd.getString("message").value_or("");
  EXPECT_EQ(Simd.getString("cache").value_or(""), "miss")
      << "jit-simd was served the scalar-jit artifact";
  const json::Value *SI = Simd.get("jit");
  ASSERT_NE(SI, nullptr);
  EXPECT_EQ(SI->getBool("used_jit").value_or(false), true);
  EXPECT_GE(SI->getNumber("vectorized_nests").value_or(0), 1);

  // `s` is a float + fold the vectorizer lane-splits, so the response
  // must declare the reassociation and the two tiers agree within a
  // small ULP budget (bit-equality is not promised for this program).
  EXPECT_EQ(SI->getBool("reassociated").value_or(false), true);
  const json::Value *SA = Jit.get("scalars");
  const json::Value *SB = Simd.get("scalars");
  ASSERT_NE(SA, nullptr);
  ASSERT_NE(SB, nullptr);
  ASSERT_TRUE(SA->getNumber("s").has_value());
  ASSERT_TRUE(SB->getNumber("s").has_value());
  EXPECT_TRUE(support::agreeWithin(
      *SA->getNumber("s"), *SB->getNumber("s"),
      support::Tolerance::ReassociatedFloat, /*MaxUlps=*/16384))
      << *SA->getNumber("s") << " vs " << *SB->getNumber("s");

  // Warm replay: both keys hit, independently.
  EXPECT_EQ(roundTrip(Client::makeExecute(ServerSource, "c2", "jit", "", 7))
                .getString("cache")
                .value_or(""),
            "hit");
  EXPECT_EQ(
      roundTrip(Client::makeExecute(ServerSource, "c2", "jit-simd", "", 7))
          .getString("cache")
          .value_or(""),
      "hit");
}

TEST_F(ServerTest, UnsafeProgramIsVettedBeforeCompileAndNegativelyCached) {
  // T is read but never written and is not live-in: at the requested
  // safety tier the checker proves the read undefined and the daemon
  // rejects the program before any kernel work is enqueued.
  const std::string Unsafe = R"(
region R : [1..4, 1..4];
array A : R;
array T : R temp;
[R] A := T + 1.0;
)";
  json::Value First =
      roundTrip(Client::makeCompile(Unsafe, "c2", "", "safety"));
  EXPECT_EQ(First.getBool("ok").value_or(true), false);
  EXPECT_EQ(First.getString("error").value_or(""), "unsafe-program");
  const json::Value *Findings = First.get("findings");
  ASSERT_NE(Findings, nullptr);
  ASSERT_TRUE(Findings->isArray());
  ASSERT_GE(Findings->size(), 1u);
  EXPECT_NE(Findings->items()[0].asString().find("safety-init"),
            std::string::npos)
      << Findings->items()[0].asString();
  EXPECT_NE(Findings->items()[0].asString().find("T"), std::string::npos);

  // The rejection is negatively cached, and the cached entry replays the
  // full findings — not just the error code.
  json::Value Second =
      roundTrip(Client::makeCompile(Unsafe, "c2", "", "safety"));
  EXPECT_EQ(Second.getString("error").value_or(""), "unsafe-program");
  EXPECT_EQ(Second.getString("cache").value_or(""), "hit");
  const json::Value *Replayed = Second.get("findings");
  ASSERT_NE(Replayed, nullptr);
  ASSERT_TRUE(Replayed->isArray());
  EXPECT_EQ(Replayed->size(), Findings->size());

  // The same program compiles fine below the safety tier: the rejection
  // came from the new static analysis, not from an earlier stage.
  json::Value Full = roundTrip(Client::makeCompile(Unsafe, "c2", "", "full"));
  EXPECT_EQ(Full.getBool("ok").value_or(false), true)
      << Full.getString("message").value_or("");
}

TEST_F(ServerTest, MalformedFrameIsAnsweredThenDropped) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Srv->options().SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);
  ASSERT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                      sizeof(Addr)),
            0);

  const std::string Garbage = "this is not json";
  writeRaw(Fd, static_cast<uint32_t>(Garbage.size()), Garbage);
  json::Value Resp;
  ASSERT_EQ(readFrame(Fd, DefaultMaxFrameBytes, Resp), FrameRead::Ok);
  EXPECT_EQ(Resp.getBool("ok").value_or(true), false);
  EXPECT_EQ(Resp.getString("error").value_or(""), "malformed");

  // The server hangs up after answering (the stream may be desynced).
  json::Value Next;
  EXPECT_EQ(readFrame(Fd, DefaultMaxFrameBytes, Next), FrameRead::Eof);
  ::close(Fd);
}

TEST_F(ServerTest, OversizedProgramIsRejectedFromItsLengthPrefix) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Srv->options().SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);
  ASSERT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                      sizeof(Addr)),
            0);

  writeRaw(Fd, Srv->options().MaxProgramBytes + 1, "");
  json::Value Resp;
  ASSERT_EQ(readFrame(Fd, DefaultMaxFrameBytes, Resp), FrameRead::Ok);
  EXPECT_EQ(Resp.getString("error").value_or(""), "too-large");
  ::close(Fd);
}

TEST_F(ServerTest, ConcurrentIdenticalCompilesSingleFlight) {
  const unsigned NumThreads = 8;
  std::vector<std::string> Outcomes(NumThreads);
  std::vector<std::thread> Threads;
  for (unsigned I = 0; I < NumThreads; ++I)
    Threads.emplace_back([&, I] {
      Client C;
      json::Value Resp;
      if (!C.connect(Srv->options().SocketPath))
        return;
      if (C.request(Client::makeCompile(ServerSource, "c2+f3"), Resp))
        Outcomes[I] = Resp.getString("cache").value_or("");
    });
  for (std::thread &T : Threads)
    T.join();

  unsigned Misses = 0, Served = 0;
  for (const std::string &O : Outcomes) {
    ASSERT_FALSE(O.empty());
    Misses += O == "miss";
    Served += O == "hit" || O == "coalesced";
  }
  EXPECT_EQ(Misses, 1u);
  EXPECT_EQ(Served, NumThreads - 1);
}

TEST_F(ServerTest, ShutdownOpStopsTheDaemon) {
  json::Value Resp = roundTrip(Client::makeShutdown());
  EXPECT_EQ(Resp.getBool("ok").value_or(false), true);
  Srv->wait(); // returns because the shutdown op fired, not stop()
  Client C;
  EXPECT_FALSE(C.connect(Srv->options().SocketPath));
}

} // namespace

//===- tests/MemoryAccountingTest.cpp - Memory census tests -----------------===//

#include "exec/MemoryAccounting.h"

#include "analysis/ASDG.h"
#include "ir/Normalize.h"
#include "xform/Strategy.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace alf;
using namespace alf::analysis;
using namespace alf::exec;
using namespace alf::ir;
using namespace alf::xform;

namespace {

std::set<const ArraySymbol *> contractedSet(const Program &P, Strategy S) {
  ASDG G = ASDG::build(P);
  StrategyResult SR = applyStrategy(G, S);
  return std::set<const ArraySymbol *>(SR.Contracted.begin(),
                                       SR.Contracted.end());
}

TEST(MemoryCensusTest, StaticCountsWithAndWithoutContraction) {
  auto P = tp::makeTomcatvFragment();
  normalizeProgram(*P);
  MemoryCensus Before = computeCensus(*P, {});
  // 10 user arrays + 2 compiler temporaries.
  EXPECT_EQ(Before.StaticArrays, 12u);
  EXPECT_EQ(Before.StaticCompiler, 2u);
  EXPECT_EQ(Before.StaticUser, 10u);

  MemoryCensus After = computeCensus(*P, contractedSet(*P, Strategy::C2));
  EXPECT_EQ(After.StaticArrays, 9u); // R, _T1, _T2 contracted
  EXPECT_EQ(After.StaticCompiler, 0u);
}

TEST(MemoryCensusTest, PeakBytesDropWithContraction) {
  auto P = tp::makeUserTempPair(64);
  MemoryCensus Before = computeCensus(*P, {});
  MemoryCensus After = computeCensus(*P, contractedSet(*P, Strategy::C2));
  EXPECT_EQ(Before.PeakLive, 3u);
  EXPECT_EQ(After.PeakLive, 2u);
  EXPECT_EQ(Before.PeakBytes - After.PeakBytes, 64u * 64u * 8u);
}

TEST(MemoryCensusTest, ProblemSizeChangeFormula) {
  // Paper Figure 8: C(lb, la) = 100 x (lb - la)/la.
  EXPECT_NEAR(problemSizeChangePercent(19, 7), 171.4, 0.05);
  EXPECT_NEAR(problemSizeChangePercent(8, 1), 700.0, 0.05);
  EXPECT_NEAR(problemSizeChangePercent(49, 27), 81.5, 0.05);
  EXPECT_NEAR(problemSizeChangePercent(23, 17), 35.3, 0.05);
  EXPECT_NEAR(problemSizeChangePercent(40, 32), 25.0, 0.05);
  EXPECT_TRUE(std::isinf(problemSizeChangePercent(22, 0)));
}

TEST(MemoryCensusTest, FindMaxProblemSize) {
  // 10 arrays of N*N doubles.
  auto Bytes = [](int64_t N) {
    return static_cast<uint64_t>(10) * N * N * 8;
  };
  EXPECT_EQ(findMaxProblemSize(Bytes, 10 * 100 * 100 * 8, 1 << 20), 100);
  EXPECT_EQ(findMaxProblemSize(Bytes, 10 * 100 * 100 * 8 - 1, 1 << 20), 99);
  EXPECT_EQ(findMaxProblemSize(Bytes, 0, 1 << 20), 0);
}

TEST(MemoryCensusTest, ScalingMatchesLiveRatio) {
  // With all arrays the same size, the measured problem-size growth along
  // one dimension approaches sqrt(lb/la) for rank-2 data (the paper's
  // volume-vs-dimension distinction in Figure 8).
  double Lb = 19, La = 7;
  double VolumeScale = Lb / La;
  double DimScale = std::sqrt(VolumeScale);
  EXPECT_NEAR(100.0 * (VolumeScale - 1.0), 171.4, 0.1);
  EXPECT_NEAR(100.0 * (DimScale - 1.0), 64.8, 0.5);
}

} // namespace

//===- tests/VerifyTest.cpp - Translation-validation injected-bug tests ----===//
//
// Proves the verify passes catch deliberately injected compiler bugs —
// corrupted dependence graphs, illegal fusion/contraction decisions, and
// unsafe parallel schedules — *statically*, before any output could
// diverge. Each test corrupts one artifact through a testing hook and
// asserts the corresponding pass rejects it with the right kind of
// finding, while the uncorrupted artifact passes cleanly.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "analysis/ASDG.h"
#include "driver/Pipeline.h"
#include "exec/ParallelExecutor.h"
#include "ir/Normalize.h"
#include "scalarize/Scalarize.h"
#include "support/Statistic.h"
#include "verify/Verify.h"
#include "xform/FusionPartition.h"
#include "xform/IlpStrategy.h"
#include "xform/Strategy.h"

#include <gtest/gtest.h>

using namespace alf;
using namespace alf::analysis;
using namespace alf::ir;
using namespace alf::xform;

namespace {

bool hasFindingFrom(const verify::VerifyReport &R, const std::string &Pass) {
  for (const verify::VerifyFinding &F : R.Findings)
    if (F.Pass == Pass)
      return true;
  return false;
}

TEST(VerifyTest, LevelNamesRoundTrip) {
  using verify::VerifyLevel;
  EXPECT_STREQ(verify::getVerifyLevelName(VerifyLevel::Off), "off");
  EXPECT_STREQ(verify::getVerifyLevelName(VerifyLevel::Structural),
               "structural");
  EXPECT_STREQ(verify::getVerifyLevelName(VerifyLevel::Full), "full");
  EXPECT_STREQ(verify::getVerifyLevelName(VerifyLevel::Safety), "safety");
  EXPECT_EQ(verify::verifyLevelNamed("full"), VerifyLevel::Full);
  EXPECT_EQ(verify::verifyLevelNamed("structural"), VerifyLevel::Structural);
  EXPECT_EQ(verify::verifyLevelNamed("off"), VerifyLevel::Off);
  EXPECT_EQ(verify::verifyLevelNamed("safety"), VerifyLevel::Safety);
  EXPECT_EQ(verify::verifyLevelNamed("bogus"), std::nullopt);
  EXPECT_GE(VerifyLevel::Safety, VerifyLevel::Full);
}

TEST(VerifyTest, CleanProgramIsFullyCertified) {
  auto P = tp::makeFigure2();
  normalizeProgram(*P);
  ASDG G = ASDG::build(*P);
  EXPECT_TRUE(verify::verifyStructure(*P, &G).ok());
  EXPECT_TRUE(verify::verifyDependences(G).ok());
  for (Strategy S : allStrategiesForTest()) {
    StrategyResult SR = applyStrategy(G, S);
    verify::VerifyReport R = verify::verifyStrategy(G, SR);
    EXPECT_TRUE(R.ok()) << getStrategyName(S) << ":\n" << R.str();
  }
}

TEST(VerifyTest, StructureRejectsNonNormalFormProgram) {
  // Pre-normalization the LHS appears on its own RHS — a violation of
  // normal-form condition (i) the structural pass must flag.
  Program P("self-read");
  const Region *R = P.regionFromExtents({8});
  ArraySymbol *A = P.makeArray("A", 1);
  P.assign(R, A, add(aref(A), cst(1.0)));
  verify::VerifyReport Rep = verify::verifyStructure(P);
  EXPECT_FALSE(Rep.ok());
  EXPECT_TRUE(hasFindingFrom(Rep, "structure")) << Rep.str();
}

TEST(VerifyTest, OracleCatchesDroppedEdge) {
  auto P = tp::makeFigure2();
  normalizeProgram(*P);
  ASDG G = ASDG::build(*P);
  ASSERT_GT(G.numEdges(), 0u);
  ASSERT_TRUE(verify::verifyDependences(G).ok());

  // Simulate the analysis losing a dependence: the oracle re-derives it
  // from the program and reports it as missing.
  G.dropEdgeForTest(0);
  verify::VerifyReport Rep = verify::verifyDependences(G);
  ASSERT_FALSE(Rep.ok());
  EXPECT_TRUE(hasFindingFrom(Rep, "dependence-oracle")) << Rep.str();
  EXPECT_NE(Rep.str().find("missing dependence"), std::string::npos)
      << Rep.str();
}

TEST(VerifyTest, OracleCatchesSpuriousEdge) {
  auto P = tp::makeFigure2();
  normalizeProgram(*P);
  ASDG G = ASDG::build(*P);
  const Symbol *A = P->findSymbol("A");
  ASSERT_NE(A, nullptr);

  // Fabricate a dependence the program does not have (distance (5,5) on
  // A between S0 and S1).
  DepEdge Fake;
  Fake.Src = 0;
  Fake.Tgt = 1;
  Fake.Labels.push_back(DepLabel{A, Offset({5, 5}), DepType::Flow});
  G.injectEdgeForTest(std::move(Fake));

  verify::VerifyReport Rep = verify::verifyDependences(G);
  ASSERT_FALSE(Rep.ok());
  EXPECT_NE(Rep.str().find("spurious dependence"), std::string::npos)
      << Rep.str();
}

TEST(VerifyTest, StructureCatchesProgramOrderViolation) {
  auto P = tp::makeFigure2();
  normalizeProgram(*P);
  ASDG G = ASDG::build(*P);
  const Symbol *A = P->findSymbol("A");

  // An edge against program order would make the "graph" cyclic under
  // the Src < Tgt convention every consumer relies on.
  DepEdge Back;
  Back.Src = 2;
  Back.Tgt = 1;
  Back.Labels.push_back(DepLabel{A, Offset({0, 0}), DepType::Flow});
  G.injectEdgeForTest(std::move(Back));

  verify::VerifyReport Rep = verify::verifyStructure(*P, &G);
  ASSERT_FALSE(Rep.ok());
  EXPECT_TRUE(hasFindingFrom(Rep, "structure")) << Rep.str();
}

TEST(VerifyTest, LegalityRejectsFusionWithCarriedFlow) {
  auto P = tp::makeFigure2();
  normalizeProgram(*P);
  ASDG G = ASDG::build(*P);

  // Force S0 and S2 into one cluster: their flow dependence on A has
  // UDV (1,-1) != 0, so Definition 5 condition (ii) fails.
  StrategyResult SR;
  SR.Partition = FusionPartition::trivial(G);
  SR.Partition.merge({0, 2});

  verify::VerifyReport Rep = verify::verifyStrategy(G, SR);
  ASSERT_FALSE(Rep.ok());
  EXPECT_TRUE(hasFindingFrom(Rep, "fusion-legality")) << Rep.str();
}

TEST(VerifyTest, LegalityRejectsContractionOfLiveOutArray) {
  auto P = tp::makeFigure2();
  normalizeProgram(*P);
  ASDG G = ASDG::build(*P);
  const auto *A = dyn_cast<ArraySymbol>(P->findSymbol("A"));
  ASSERT_NE(A, nullptr);
  ASSERT_TRUE(A->isLiveOut());

  // Pretend the strategy decided to contract a live-out array: its final
  // value would be lost. Definition 6's liveness side condition fails.
  StrategyResult SR;
  SR.Partition = FusionPartition::trivial(G);
  SR.Contracted.push_back(A);

  verify::VerifyReport Rep = verify::verifyStrategy(G, SR);
  ASSERT_FALSE(Rep.ok());
  EXPECT_TRUE(hasFindingFrom(Rep, "contraction-legality")) << Rep.str();
}

TEST(VerifyTest, AlgebraCheckRejectsPlantedNonAssociativeSemiring) {
  // The Definition 6 contractibility argument consumes ⊕ associativity
  // and identity. Rebind a reduction to the bogus subtraction "semiring"
  // after construction — exactly the corruption a broken registry entry
  // or override path would introduce — and the legality pass must refuse
  // to certify any strategy over it.
  Program P("bogus-algebra");
  const Region *R = P.regionFromExtents({8});
  ArraySymbol *A = P.makeArray("A", 1);
  ArraySymbol *T = P.makeUserTemp("T", 1);
  ScalarSymbol *S = P.makeScalar("s");
  P.assign(R, T, mul(aref(A), cst(2.0)));
  ReduceStmt *RS = P.reduce(R, S, semiring::plusTimes(), aref(T));
  normalizeProgram(P);
  ASDG G = ASDG::build(P);

  // The lawful algebra certifies cleanly...
  StrategyResult SR = applyStrategy(G, Strategy::C2);
  EXPECT_TRUE(verify::verifyStrategy(G, SR).ok());

  // ...and the planted one is rejected with a contraction-legality
  // finding naming the broken law.
  RS->setSemiring(semiring::bogusNonAssociativeForTest());
  verify::VerifyReport Rep = verify::verifyStrategy(G, SR);
  ASSERT_FALSE(Rep.ok());
  EXPECT_TRUE(hasFindingFrom(Rep, "contraction-legality")) << Rep.str();
  EXPECT_NE(Rep.str().find("violates its declared algebra"),
            std::string::npos)
      << Rep.str();
}

TEST(VerifyTest, FullVerifyRejectsCorruptedIlpSolution) {
  // Fault injection into the branch-and-bound partitioner itself: the
  // test hook makes solveOptimalPartition smuggle one illegal decision
  // into an otherwise optimal solution (an illegal cluster merge if the
  // program has one, a live-out contraction otherwise). The pipeline
  // never trusts the solver, so the independent Definition 5/6 re-proof
  // at VerifyLevel::Full must catch exactly this class of solver bug.
  auto P = tp::makeFigure2();
  normalizeProgram(*P);
  ASDG G = ASDG::build(*P);

  // Sanity: the honest solver's solution is certified.
  StrategyResult Clean = applyStrategy(G, Strategy::IlpOptimal);
  ASSERT_TRUE(verify::verifyStrategy(G, Clean).ok());

  setIlpCorruptionForTest(true);
  StrategyResult Bad = applyStrategy(G, Strategy::IlpOptimal);
  setIlpCorruptionForTest(false);

  verify::VerifyReport Rep = verify::verifyStrategy(G, Bad);
  ASSERT_FALSE(Rep.ok()) << "corrupted ILP solution was certified";
  EXPECT_TRUE(hasFindingFrom(Rep, "fusion-legality") ||
              hasFindingFrom(Rep, "contraction-legality"))
      << Rep.str();

  // The hook is off again: fresh solves must be clean (guards against
  // the corruption leaking into later tests through the global).
  EXPECT_TRUE(verify::verifyStrategy(G, applyStrategy(G, Strategy::IlpOptimal))
                  .ok());
}

TEST(VerifyTest, StrategyOverCorruptedGraphIsRejected) {
  // End-to-end injected-bug scenario: the analysis loses every edge, the
  // strategy happily fuses everything, and the outputs of the fused
  // program could even agree by luck — but the legality proof re-derives
  // the dependences from the program and rejects the cluster statically.
  auto P = tp::makeFigure2();
  normalizeProgram(*P);
  ASDG G = ASDG::build(*P);
  while (G.numEdges() > 0)
    G.dropEdgeForTest(0);

  // Against the corrupted (edgeless) graph the legality predicate sees no
  // conflicting labels, so fusing S0 with S2 looks fine...
  StrategyResult SR;
  SR.Partition = FusionPartition::trivial(G);
  ASSERT_TRUE(isLegalFusion(SR.Partition, {0, 2}));
  SR.Partition.merge({0, 2});

  // ...but the proof re-derives the dependences from the program itself
  // and rejects the cluster before anything runs.
  verify::VerifyReport Rep = verify::verifyStrategy(G, SR);
  ASSERT_FALSE(Rep.ok());
  EXPECT_TRUE(hasFindingFrom(Rep, "fusion-legality") ||
              hasFindingFrom(Rep, "dependence-oracle"))
      << Rep.str();
}

TEST(VerifyTest, RaceDetectorRejectsForcedParallelSchedule) {
  // [1..64] S0: B := A@(-1);  S1: A := B + 1.
  // Fusing both is legal (the flow on B is null; the anti dependence on
  // A only constrains the loop direction), but the fused loop *carries*
  // the dependence on A, so the planner runs it sequentially. Forcing it
  // parallel must trip the static race detector.
  Program P("carried");
  const Region *R = P.regionFromExtents({64});
  ArraySymbol *A = P.makeArray("A", 1);
  ArraySymbol *B = P.makeArray("B", 1);
  P.assign(R, B, aref(A, {-1}));
  P.assign(R, A, add(aref(B), cst(1.0)));
  normalizeProgram(P);
  ASDG G = ASDG::build(P);

  StrategyResult SR;
  SR.Partition = FusionPartition::trivial(G);
  ASSERT_TRUE(isLegalFusion(SR.Partition, {0, 1}));
  SR.Partition.merge({0, 1});
  auto LP = scalarize::scalarize(G, SR);

  exec::ParallelSchedule Sched = exec::planParallelism(LP);
  ASSERT_EQ(Sched.NodePlans.size(), LP.nodes().size());
  // The planner must have refused to parallelize the carried nest...
  for (const NestParallelPlan &Plan : Sched.NodePlans)
    EXPECT_FALSE(Plan.isParallel()) << Plan.Reason;
  EXPECT_TRUE(verify::verifyParallelSafety(LP, Sched).ok());

  // ...so force it and let the race detector prove why that was right.
  for (NestParallelPlan &Plan : Sched.NodePlans) {
    Plan.ParallelLoop = 0;
    Plan.Decision = ParallelDecision::OuterParallel;
  }
  verify::VerifyReport Rep = verify::verifyParallelSafety(LP, Sched);
  ASSERT_FALSE(Rep.ok());
  EXPECT_TRUE(hasFindingFrom(Rep, "race")) << Rep.str();
}

TEST(VerifyTest, PipelineCollectsFindingsThroughHandler) {
  // With a handler installed, a rejected proof surfaces through
  // OnVerifyError and verifyFindings() instead of aborting; a clean
  // program accumulates nothing at full level.
  auto P = tp::makeTomcatvFragment();
  driver::PipelineOptions PO;
  PO.Verify = verify::VerifyLevel::Full;
  unsigned Calls = 0;
  PO.OnVerifyError = [&Calls](const verify::VerifyReport &) { ++Calls; };
  driver::Pipeline PL(*P, PO);
  for (Strategy S : allStrategiesForTest())
    (void)PL.scalarize(S);
  EXPECT_EQ(Calls, 0u);
  EXPECT_TRUE(PL.verifyFindings().ok()) << PL.verifyFindings().str();
}

//===----------------------------------------------------------------------===//
// Pass 5: the memory-safety checker over scalarized programs.
//===----------------------------------------------------------------------===//

/// Resets the scalarizer fault hook even when an ASSERT bails out of the
/// test body early.
struct CorruptionGuard {
  explicit CorruptionGuard(scalarize::ScalarizeCorruption Mode) {
    scalarize::setScalarizeCorruptionForTest(Mode);
  }
  ~CorruptionGuard() {
    scalarize::setScalarizeCorruptionForTest(
        scalarize::ScalarizeCorruption::None);
  }
};

TEST(VerifyTest, SafetyCertifiesCleanScalarizations) {
  // Figure 2 exercises offset loads; Tomcatv adds contracted temporaries
  // (scalar use-before-def obligations inside one body).
  std::unique_ptr<Program> Programs[] = {tp::makeFigure2(),
                                         tp::makeTomcatvFragment()};
  for (auto &P : Programs) {
    normalizeProgram(*P);
    ASDG G = ASDG::build(*P);
    for (Strategy S : allStrategiesForTest()) {
      StrategyResult SR = applyStrategy(G, S);
      lir::LoopProgram LP = scalarize::scalarize(G, SR);
      verify::VerifyReport R = verify::verifySafety(LP, &G);
      EXPECT_TRUE(R.ok()) << P->getName() << "/" << getStrategyName(S)
                          << ":\n"
                          << R.str();
    }
  }
}

TEST(VerifyTest, SafetyCatchesPlantedOffByOneBound) {
  auto P = tp::makeFigure2();
  normalizeProgram(*P);
  ASDG G = ASDG::build(*P);
  StrategyResult SR = applyStrategy(G, Strategy::C2);
  {
    CorruptionGuard Guard(scalarize::ScalarizeCorruption::OffByOneBound);
    lir::LoopProgram Bad = scalarize::scalarize(G, SR);
    verify::VerifyReport Rep = verify::verifySafety(Bad, &G);
    ASSERT_FALSE(Rep.ok());
    EXPECT_TRUE(hasFindingFrom(Rep, "safety-bounds")) << Rep.str();
  }
  // Hook disarmed: the identical pipeline certifies again.
  EXPECT_TRUE(verify::verifySafety(scalarize::scalarize(G, SR), &G).ok());
}

TEST(VerifyTest, SafetyCatchesSkippedAccumulatorInit) {
  Program P("dot");
  const Region *R = P.regionFromExtents({16});
  ArraySymbol *A = P.makeArray("A", 1);
  ArraySymbol *B = P.makeArray("B", 1);
  ScalarSymbol *Acc = P.makeScalar("acc");
  P.reduce(R, Acc, semiring::plusTimes(), mul(aref(A), aref(B)));
  normalizeProgram(P);
  ASDG G = ASDG::build(P);
  StrategyResult SR = applyStrategy(G, Strategy::C2);
  {
    CorruptionGuard Guard(
        scalarize::ScalarizeCorruption::SkipAccumulatorInit);
    lir::LoopProgram Bad = scalarize::scalarize(G, SR);
    verify::VerifyReport Rep = verify::verifySafety(Bad, &G);
    ASSERT_FALSE(Rep.ok());
    EXPECT_TRUE(hasFindingFrom(Rep, "safety-init")) << Rep.str();
    EXPECT_NE(Rep.str().find("acc"), std::string::npos) << Rep.str();
  }
  EXPECT_TRUE(verify::verifySafety(scalarize::scalarize(G, SR), &G).ok());
}

TEST(VerifyTest, SafetyCatchesTruncatedCopyOut) {
  auto P = tp::makeFigure2();
  normalizeProgram(*P);
  ASDG G = ASDG::build(*P);
  StrategyResult SR = applyStrategy(G, Strategy::C2);
  {
    CorruptionGuard Guard(scalarize::ScalarizeCorruption::ShrunkenCopyOut);
    lir::LoopProgram Bad = scalarize::scalarize(G, SR);
    verify::VerifyReport Rep = verify::verifySafety(Bad, &G);
    ASSERT_FALSE(Rep.ok());
    EXPECT_TRUE(hasFindingFrom(Rep, "safety-init")) << Rep.str();
    EXPECT_NE(Rep.str().find("truncated copy-out"), std::string::npos)
        << Rep.str();
  }
  EXPECT_TRUE(verify::verifySafety(scalarize::scalarize(G, SR), &G).ok());
}

TEST(VerifyTest, PipelineReportsUnsafeProgramAtSafetyLevel) {
  driver::PipelineOptions PO;
  PO.Verify = verify::VerifyLevel::Safety;
  {
    auto P = tp::makeFigure2();
    driver::Pipeline PL(*P, PO);
    driver::CompileStatus St = PL.tryCompile(driver::CompileRequest{});
    EXPECT_TRUE(St.ok()) << St.Message;
  }
  auto P = tp::makeFigure2();
  driver::Pipeline PL(*P, PO);
  CorruptionGuard Guard(scalarize::ScalarizeCorruption::OffByOneBound);
  driver::CompileStatus St = PL.tryCompile(driver::CompileRequest{});
  EXPECT_EQ(St.Code, driver::CompileCode::UnsafeProgram);
  EXPECT_STREQ(driver::getCompileCodeName(St.Code), "unsafe-program");
  EXPECT_FALSE(St.Findings.ok());
  EXPECT_NE(St.Message.find("safety"), std::string::npos) << St.Message;
}

TEST(VerifyTest, VerifyStatisticsAccumulate) {
  uint64_t ProofsBefore = getStatisticValue("verify", "NumStrategyProofs");
  uint64_t OracleBefore = getStatisticValue("verify", "NumOracleRuns");
  auto P = tp::makeUserTempPair();
  normalizeProgram(*P);
  ASDG G = ASDG::build(*P);
  (void)verify::verifyDependences(G);
  StrategyResult SR = applyStrategy(G, Strategy::C2);
  (void)verify::verifyStrategy(G, SR);
  EXPECT_GT(getStatisticValue("verify", "NumStrategyProofs"), ProofsBefore);
  EXPECT_GT(getStatisticValue("verify", "NumOracleRuns"), OracleBefore);
}

} // namespace

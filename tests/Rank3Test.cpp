//===- tests/Rank3Test.cpp - Rank-3 coverage across the stack ----------------===//
//
// The paper's SP application is three-dimensional; everything in ALF is
// rank-generic. These tests push rank-3 programs through dependence
// analysis, fusion, scalarization, both backends, the interpreter, the
// SPMD simulator and partial contraction.
//
//===----------------------------------------------------------------------===//

#include "analysis/ASDG.h"
#include "comm/CommInsertion.h"
#include "distsim/DistInterpreter.h"
#include "exec/Interpreter.h"
#include "ir/Normalize.h"
#include "scalarize/CEmitter.h"
#include "scalarize/FortranEmitter.h"
#include "scalarize/Scalarize.h"
#include "xform/Strategy.h"

#include <gtest/gtest.h>

using namespace alf;
using namespace alf::analysis;
using namespace alf::exec;
using namespace alf::ir;
using namespace alf::xform;

namespace {

/// A 3-D pentadiagonal-solver-flavoured program: stencil in all three
/// dimensions, a contractible chain, and a self-update.
std::unique_ptr<Program> make3D(int64_t N) {
  auto P = std::make_unique<Program>("sp3d");
  const Region *R = P->regionFromExtents({N, N, N});
  ArraySymbol *U = P->makeArray("U", 3);
  ArraySymbol *RHS = P->makeArray("RHS", 3);
  ArraySymbol *T1 = P->makeUserTemp("T1", 3);
  ArraySymbol *T2 = P->makeUserTemp("T2", 3);
  P->assign(R, T1,
            add(add(aref(U, {-1, 0, 0}), aref(U, {1, 0, 0})),
                add(aref(U, {0, -1, 0}),
                    add(aref(U, {0, 1, 0}),
                        add(aref(U, {0, 0, -1}), aref(U, {0, 0, 1}))))));
  P->assign(R, T2, mul(aref(T1), cst(1.0 / 6.0)));
  P->assign(R, RHS, sub(aref(T2), aref(U)));
  P->assign(R, U, add(aref(U), mul(aref(RHS), cst(0.8)))); // self-update
  return P;
}

TEST(Rank3Test, ContractionAndStrategies) {
  auto P = make3D(6);
  normalizeProgram(*P);
  ASDG G = ASDG::build(*P);
  StrategyResult SR = applyStrategy(G, Strategy::C2);
  // T1, T2 and the self-update's compiler temporary contract.
  EXPECT_EQ(SR.Contracted.size(), 3u);
  EXPECT_TRUE(isValidPartition(SR.Partition));

  auto Base = scalarize::scalarizeWithStrategy(G, Strategy::Baseline);
  RunResult BaseRes = run(Base, 303);
  for (Strategy S : allStrategiesForTest()) {
    auto LP = scalarize::scalarizeWithStrategy(G, S);
    std::string Why;
    EXPECT_TRUE(resultsMatch(BaseRes, run(LP, 303), 0.0, &Why))
        << getStrategyName(S) << ": " << Why;
  }
}

TEST(Rank3Test, DistributedMatchesSequentialOn2x2x2) {
  auto P = make3D(8);
  normalizeProgram(*P);
  ASDG G = ASDG::build(*P);
  auto Seq = scalarize::scalarizeWithStrategy(G, Strategy::C2F3);
  RunResult SeqRes = run(Seq, 71);

  auto LP = scalarize::scalarizeWithStrategy(G, Strategy::C2F3);
  comm::CommPlan Plan = comm::insertLoopLevelComm(LP);
  EXPECT_GE(Plan.Exchanges, 6u); // all six stencil directions
  RunResult Dist = distsim::runDistributed(
      LP, machine::ProcGrid::make(8, 3), 71);
  std::string Why;
  EXPECT_TRUE(resultsMatch(SeqRes, Dist, 0.0, &Why)) << Why;
}

TEST(Rank3Test, PartialContractionRollingPlane) {
  // A dependence carried by the outermost of three loops contracts the
  // temporary to a 2-plane buffer over the two inner dimensions.
  Program P("plane");
  const Region *R = P.regionFromExtents({6, 6, 6});
  ArraySymbol *A = P.makeArray("A", 3);
  ArraySymbol *T = P.makeUserTemp("T", 3);
  ArraySymbol *B = P.makeArray("B", 3);
  P.assign(R, T, add(aref(A), cst(1.0)));
  P.assign(R, B, add(aref(T, {-1, 0, 0}), aref(T)));
  ASDG G = ASDG::build(P);
  auto Base = scalarize::scalarizeWithStrategy(G, Strategy::Baseline);
  auto Partial = scalarize::scalarizeWithPartialContraction(
      G, Strategy::C2, SequentialDims::dims({0}));
  const auto *TS = cast<ArraySymbol>(P.findSymbol("T"));
  const xform::PartialPlan *Plan = Partial.partialPlanFor(TS);
  ASSERT_NE(Plan, nullptr);
  EXPECT_EQ(Plan->BufferExtents, (std::vector<int64_t>{2, 6, 6}));
  std::string Why;
  EXPECT_TRUE(resultsMatch(run(Base, 11), run(Partial, 11), 0.0, &Why))
      << Why;
}

TEST(Rank3Test, BackendsEmitTripleNests) {
  auto P = make3D(4);
  normalizeProgram(*P);
  ASDG G = ASDG::build(*P);
  auto LP = scalarize::scalarizeWithStrategy(G, Strategy::C2);
  std::string C = scalarize::emitC(LP, "kernel3d");
  EXPECT_NE(C.find("for (i3 ="), std::string::npos);
  EXPECT_NE(C.find("[(i1+0 - (0))*36"), std::string::npos) << C;
  std::string F = scalarize::emitFortran(LP, "K3D");
  EXPECT_NE(F.find("DO I3 ="), std::string::npos);
  EXPECT_NE(F.find("U(I1,I2,I3"), std::string::npos) << F;
}

} // namespace

//===- tests/VendorTest.cpp - Figure 6 compiler-matrix tests ----------------===//

#include "vendors/CompilerModel.h"
#include "vendors/Fragments.h"

#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace alf;
using namespace alf::ir;
using namespace alf::vendors;

namespace {

const VendorPolicy &policyNamed(const std::string &Name) {
  static std::vector<VendorPolicy> All = allVendorPolicies();
  for (const VendorPolicy &P : All)
    if (P.Name.find(Name) != std::string::npos)
      return P;
  ADD_FAILURE() << "no policy named " << Name;
  return All.front();
}

TEST(FragmentTest, AllFragmentsBuildAndVerify) {
  for (unsigned Id = 1; Id <= NumFragments; ++Id) {
    auto P = buildFragment(Id);
    // Fragments 4, 5 and 8 violate condition (i) until normalized.
    if (Id == 4 || Id == 5 || Id == 8)
      EXPECT_FALSE(isWellFormed(*P)) << "fragment " << Id;
    else
      EXPECT_TRUE(isWellFormed(*P)) << "fragment " << Id;
    EXPECT_FALSE(describeFragment(Id).empty());
  }
}

TEST(FragmentTest, ProbeKinds) {
  EXPECT_EQ(probeKindOf(1), ProbeKind::Fusion);
  EXPECT_EQ(probeKindOf(3), ProbeKind::Fusion);
  EXPECT_EQ(probeKindOf(4), ProbeKind::CompilerContract);
  EXPECT_EQ(probeKindOf(6), ProbeKind::UserContract);
  EXPECT_EQ(probeKindOf(8), ProbeKind::TradeOff);
}

TEST(VendorTest, FivePoliciesInFigureOrder) {
  auto All = allVendorPolicies();
  ASSERT_EQ(All.size(), 5u);
  EXPECT_EQ(All[0].Name, "PGI HPF 2.1");
  EXPECT_EQ(All[1].Name, "IBM XLHPF 1.2");
  EXPECT_EQ(All[2].Name, "APR XHPF 2.0");
  EXPECT_EQ(All[3].Name, "Cray F90 2.0.1.0");
  EXPECT_EQ(All[4].Name, "ZPL (ALF)");
}

/// The Figure 6 matrix, derived from the section 5.1 prose: which of the
/// eight probes each compiler handles properly.
TEST(VendorTest, Figure6Matrix) {
  struct Row {
    const char *Vendor;
    bool Expect[NumFragments];
  };
  const Row Rows[] = {
      // (1)   (2)   (3)    (4)   (5)   (6)    (7)    (8)
      {"PGI", {false, false, false, true, true, false, false, false}},
      {"IBM", {false, false, false, true, true, false, false, false}},
      {"APR", {true, true, false, true, true, false, false, false}},
      {"Cray", {true, true, false, true, true, true, false, false}},
      {"ZPL", {true, true, true, true, true, true, true, true}},
  };
  for (const Row &R : Rows) {
    const VendorPolicy &Policy = policyNamed(R.Vendor);
    for (unsigned Id = 1; Id <= NumFragments; ++Id)
      EXPECT_EQ(fragmentHandledProperly(Id, Policy), R.Expect[Id - 1])
          << R.Vendor << " on fragment " << Id << " ("
          << describeFragment(Id) << ")";
  }
}

TEST(VendorTest, CrayContractsCompilerTempInFragment8) {
  // "it contracts the compiler temporary in (8) at the expense of
  // contracting the two user temporaries."
  VendorRun Run =
      runVendorPipeline(buildFragment(8), policyNamed("Cray"));
  EXPECT_TRUE(Run.ContractedNames.count("_T1"));
  EXPECT_FALSE(Run.ContractedNames.count("T1"));
  EXPECT_FALSE(Run.ContractedNames.count("T2"));
}

TEST(VendorTest, ALFSacrificesCompilerTempInFragment8) {
  // "our algorithm is guaranteed to contract it unless a more favorable
  // contraction is performed that prevents it" — here the user arrays
  // carry more reference weight.
  VendorRun Run = runVendorPipeline(buildFragment(8), policyNamed("ZPL"));
  EXPECT_TRUE(Run.ContractedNames.count("T1"));
  EXPECT_TRUE(Run.ContractedNames.count("T2"));
  EXPECT_FALSE(Run.ContractedNames.count("_T1"));
}

TEST(VendorTest, PGICompilesEachStatementToItsOwnNest) {
  VendorRun Run = runVendorPipeline(buildFragment(1), policyNamed("PGI"));
  EXPECT_NE(Run.ClusterOf[0], Run.ClusterOf[1]);
}

TEST(VendorTest, CrayFailsOnAntiDependenceFusion) {
  // "fusion does not occur in either (3) or (7), in the latter case
  // inhibiting contraction."
  VendorRun Run3 = runVendorPipeline(buildFragment(3), policyNamed("Cray"));
  EXPECT_NE(Run3.ClusterOf[0], Run3.ClusterOf[1]);
  VendorRun Run7 = runVendorPipeline(buildFragment(7), policyNamed("Cray"));
  EXPECT_FALSE(Run7.ContractedNames.count("B"));
}

} // namespace

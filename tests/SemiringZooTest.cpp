//===- tests/SemiringZooTest.cpp - Workload zoo vs scalar references --------===//
//
// The semiring workload zoo validated against independent scalar
// references: Floyd–Warshall (min-plus) and transitive closure (or-and)
// as straightforward triple loops over an N×N matrix, k-NN best-score
// (max-times) as a plain fold. Every backend — sequential interpreter
// under every strategy, parallel executor, native JIT, and the runtime
// engine's trace path — must reproduce the reference bit-identically on
// the same controlled inputs, with full translation validation on.
//
// The references deliberately do NOT share any code with the compiler:
// they mirror the backends' fold semantics (std::fmin/fmax for the
// elementwise relax, which agree exactly with the semiring ⊕ on finite
// data) and the reference triple-loop iteration order the pivot-sweep
// programs encode through their scalar flow dependences.
//
//===----------------------------------------------------------------------===//

#include "benchprogs/Benchmarks.h"
#include "driver/Pipeline.h"
#include "exec/Eval.h"
#include "exec/Interpreter.h"
#include "exec/NativeJit.h"
#include "exec/ParallelExecutor.h"
#include "runtime/Runtime.h"
#include "support/StringUtil.h"
#include "verify/Verify.h"
#include "xform/Strategy.h"

#include <cmath>
#include <filesystem>
#include <gtest/gtest.h>
#include <unistd.h>

using namespace alf;
using namespace alf::benchprogs;
using namespace alf::exec;
using namespace alf::ir;
using namespace alf::xform;

namespace {

constexpr int64_t N = 6;

//===----------------------------------------------------------------------===//
// Controlled inputs. Exactly-representable values (quarters) so every
// backend's arithmetic on them is reproducible to the bit.
//===----------------------------------------------------------------------===//

double fwInput(int64_t I, int64_t J) {
  return 0.25 * static_cast<double>((I * 7 + J * 3) % 13) + 0.5;
}

double closureInput(int64_t I, int64_t J) {
  return (I * 5 + J * 3) % 7 < 3 ? 1.0 : 0.0;
}

double knnInput(int64_t J) {
  return 0.25 * static_cast<double>(J % 9) - 0.75;
}

//===----------------------------------------------------------------------===//
// Independent scalar references
//===----------------------------------------------------------------------===//

/// Classic Floyd–Warshall: D[i][j] = min(D[i][j], D[i][k] + D[k][j]) in
/// the canonical k-i-j order, which is exactly the statement order the
/// pivot-sweep program's scalar extracts pin down.
std::vector<double> fwReference() {
  std::vector<double> D(N * N);
  for (int64_t I = 0; I < N; ++I)
    for (int64_t J = 0; J < N; ++J)
      D[I * N + J] = fwInput(I, J);
  for (int64_t K = 0; K < N; ++K)
    for (int64_t I = 0; I < N; ++I) {
      double S = D[I * N + K]; // the program's singleton ⊕-extract
      for (int64_t J = 0; J < N; ++J)
        D[I * N + J] = std::fmin(D[I * N + J], S + D[K * N + J]);
    }
  return D;
}

/// Boolean transitive closure: R[i][j] |= R[i][k] & R[k][j], computed on
/// {0,1} doubles the way the or-and kernel does (∧ as ×, ∨ as max).
std::vector<double> closureReference() {
  std::vector<double> D(N * N);
  for (int64_t I = 0; I < N; ++I)
    for (int64_t J = 0; J < N; ++J)
      D[I * N + J] = closureInput(I, J);
  for (int64_t K = 0; K < N; ++K)
    for (int64_t I = 0; I < N; ++I) {
      double S = D[I * N + K];
      for (int64_t J = 0; J < N; ++J)
        D[I * N + J] = std::fmax(D[I * N + J], S * D[K * N + J]);
    }
  return D;
}

/// k-NN best score for class \p C: max over j of f[j]² · 0.25·(C+1),
/// folded from the max-times identity 0 (all scores are nonnegative).
double knnReference(unsigned C) {
  double Best = 0.0;
  for (int64_t J = 0; J < N; ++J) {
    double V = knnInput(J) * knnInput(J) * (0.25 * (C + 1));
    Best = V > Best ? V : Best;
  }
  return Best;
}

//===----------------------------------------------------------------------===//
// Harness
//===----------------------------------------------------------------------===//

driver::PipelineOptions zooOptions(verify::VerifyReport &Collected) {
  driver::PipelineOptions PO;
  PO.Verify = verify::VerifyLevel::Full;
  PO.OnVerifyError = [&Collected](const verify::VerifyReport &R) {
    for (const verify::VerifyFinding &F : R.Findings)
      Collected.Findings.push_back(F);
  };
  return PO;
}

const ArraySymbol *arrayNamed(const Program &P, const std::string &Name) {
  const Symbol *S = P.findSymbol(Name);
  return S ? dyn_cast<ArraySymbol>(S) : nullptr;
}

/// Overwrites the N persistent row buffers d0..dN-1 with \p In(row, col);
/// contracted temporaries have no buffers and need none.
void fillRows(const Program &P, Storage &Store,
              double (*In)(int64_t, int64_t)) {
  for (int64_t I = 0; I < N; ++I) {
    const ArraySymbol *A =
        arrayNamed(P, formatString("d%lld", static_cast<long long>(I)));
    ASSERT_NE(A, nullptr);
    ArrayBuffer *B = Store.buffer(A);
    ASSERT_NE(B, nullptr);
    for (int64_t J = 0; J < N; ++J)
      B->store({J + 1}, In(I, J));
  }
}

/// Compares every row of \p Res against the N×N reference \p Ref,
/// element-exactly.
void expectRowsEqual(const RunResult &Res, const std::vector<double> &Ref,
                     const std::string &What) {
  for (int64_t I = 0; I < N; ++I) {
    std::string Name = formatString("d%lld", static_cast<long long>(I));
    auto It = Res.LiveOut.find(Name);
    ASSERT_NE(It, Res.LiveOut.end()) << What << ": " << Name;
    ASSERT_EQ(It->second.size(), static_cast<size_t>(N)) << What;
    for (int64_t J = 0; J < N; ++J)
      EXPECT_EQ(It->second[static_cast<size_t>(J)], Ref[I * N + J])
          << What << ": " << Name << "[" << (J + 1) << "]";
  }
}

/// Runs one pivot-sweep program against the reference on every backend.
void checkPivotSweep(std::unique_ptr<Program> P,
                     double (*In)(int64_t, int64_t),
                     const std::vector<double> &Ref) {
  verify::VerifyReport Collected;
  driver::Pipeline PL(*P, zooOptions(Collected));

  // Sequential interpreter under every strategy: baseline (nothing
  // fused), greedy contraction, and contraction + width-limited fusion.
  for (Strategy S : {Strategy::Baseline, Strategy::C2, Strategy::C2F3}) {
    lir::LoopProgram LP = PL.scalarize(S);
    Storage Store = allocateStorage(LP, /*Seed=*/1);
    fillRows(PL.program(), Store, In);
    runOnStorage(LP, Store);
    expectRowsEqual(collectResults(LP, Store), Ref,
                    std::string("interpreter/") + getStrategyName(S));
  }

  // Parallel executor on the contracted program.
  {
    lir::LoopProgram LP = PL.scalarize(Strategy::C2F3);
    ParallelSchedule Sched = planParallelism(LP);
    Collected.take(verify::verifyParallelSafety(LP, Sched));
    ParallelOptions Opts;
    Opts.NumThreads = 3;
    Storage Store = allocateStorage(LP, /*Seed=*/1);
    fillRows(PL.program(), Store, In);
    runParallelOnStorage(LP, Store, Opts, Sched);
    expectRowsEqual(collectResults(LP, Store), Ref, "parallel/c2+f3");
  }

  // Native JIT on the contracted program.
  if (JitEngine::compilerAvailable()) {
    lir::LoopProgram LP = PL.scalarize(Strategy::C2F3);
    std::string Dir =
        formatString("/tmp/alf_zoo_jit_%d", static_cast<int>(getpid()));
    JitOptions JO;
    JO.CacheDir = Dir;
    JitEngine Jit(JO);
    Storage Store = allocateStorage(LP, /*Seed=*/1);
    fillRows(PL.program(), Store, In);
    JitRunInfo Info;
    Jit.runOnStorage(LP, Store, &Info);
    EXPECT_TRUE(Info.UsedJit) << "jit fell back: " << Info.FallbackReason;
    expectRowsEqual(collectResults(LP, Store), Ref, "jit/c2+f3");
    std::error_code EC;
    std::filesystem::remove_all(Dir, EC);
  }

  // Vectorizing JIT on the contracted program. The zoo's ⊕ folds are
  // compare selects (min-plus, or-and-as-max) that return one of their
  // operands bit-for-bit, so simdToleranceFor declares these programs
  // Exact and lane-splitting the reductions must still reproduce the
  // scalar reference to the bit — no ULP allowance.
  if (JitEngine::compilerAvailable()) {
    lir::LoopProgram LP = PL.scalarize(Strategy::C2F3);
    EXPECT_EQ(scalarize::simdToleranceFor(LP), support::Tolerance::Exact);
    std::string Dir =
        formatString("/tmp/alf_zoo_simd_%d", static_cast<int>(getpid()));
    JitOptions JO;
    JO.CacheDir = Dir;
    JO.Vectorize = true;
    JitEngine Jit(JO);
    Storage Store = allocateStorage(LP, /*Seed=*/1);
    fillRows(PL.program(), Store, In);
    JitRunInfo Info;
    Jit.runOnStorage(LP, Store, &Info);
    EXPECT_TRUE(Info.UsedJit)
        << "jit-simd fell back: " << Info.FallbackReason;
    expectRowsEqual(collectResults(LP, Store), Ref, "jit-simd/c2+f3");
    std::error_code EC;
    std::filesystem::remove_all(Dir, EC);
  }

  EXPECT_TRUE(Collected.ok())
      << "verification findings:\n" << Collected.str();
}

} // namespace

TEST(SemiringZooTest, FloydWarshallMatchesScalarReferenceEverywhere) {
  checkPivotSweep(buildFloydWarshall(N), fwInput, fwReference());
}

TEST(SemiringZooTest, TransitiveClosureMatchesScalarReferenceEverywhere) {
  std::vector<double> Ref = closureReference();
  // The closure kernel's outputs must stay exactly boolean.
  for (double V : Ref)
    ASSERT_TRUE(V == 0.0 || V == 1.0);
  checkPivotSweep(buildTransitiveClosure(N), closureInput, Ref);
}

TEST(SemiringZooTest, KnnBestScoresMatchScalarReference) {
  auto P = buildKnn(N);
  verify::VerifyReport Collected;
  driver::Pipeline PL(*P, zooOptions(Collected));

  for (Strategy S : {Strategy::Baseline, Strategy::C2F3}) {
    lir::LoopProgram LP = PL.scalarize(S);
    Storage Store = allocateStorage(LP, /*Seed=*/1);
    const ArraySymbol *F = arrayNamed(PL.program(), "f");
    ASSERT_NE(F, nullptr);
    ArrayBuffer *B = Store.buffer(F);
    ASSERT_NE(B, nullptr);
    for (int64_t J = 0; J < N; ++J)
      B->store({J + 1}, knnInput(J));
    runOnStorage(LP, Store);
    RunResult Res = collectResults(LP, Store);
    for (unsigned C = 0; C < 5; ++C) {
      auto It = Res.ScalarsOut.find(formatString("best%u", C));
      ASSERT_NE(It, Res.ScalarsOut.end()) << getStrategyName(S);
      EXPECT_EQ(It->second, knnReference(C))
          << getStrategyName(S) << " best" << C;
    }
  }

  // The same folds through the vectorizing JIT: max-times is an Exact
  // semiring (⊕ selects an operand), so the lane-split accumulators must
  // still land on the reference bit-for-bit.
  if (JitEngine::compilerAvailable()) {
    lir::LoopProgram LP = PL.scalarize(Strategy::C2F3);
    EXPECT_EQ(scalarize::simdToleranceFor(LP), support::Tolerance::Exact);
    std::string Dir =
        formatString("/tmp/alf_zoo_knn_simd_%d", static_cast<int>(getpid()));
    JitOptions JO;
    JO.CacheDir = Dir;
    JO.Vectorize = true;
    JitEngine Jit(JO);
    Storage Store = allocateStorage(LP, /*Seed=*/1);
    const ArraySymbol *F = arrayNamed(PL.program(), "f");
    ASSERT_NE(F, nullptr);
    ArrayBuffer *B = Store.buffer(F);
    ASSERT_NE(B, nullptr);
    for (int64_t J = 0; J < N; ++J)
      B->store({J + 1}, knnInput(J));
    JitRunInfo Info;
    Jit.runOnStorage(LP, Store, &Info);
    EXPECT_TRUE(Info.UsedJit)
        << "jit-simd fell back: " << Info.FallbackReason;
    RunResult Res = collectResults(LP, Store);
    for (unsigned C = 0; C < 5; ++C) {
      auto It = Res.ScalarsOut.find(formatString("best%u", C));
      ASSERT_NE(It, Res.ScalarsOut.end()) << "jit-simd best" << C;
      EXPECT_EQ(It->second, knnReference(C)) << "jit-simd best" << C;
    }
    std::error_code EC;
    std::filesystem::remove_all(Dir, EC);
  }

  EXPECT_TRUE(Collected.ok())
      << "verification findings:\n" << Collected.str();
}

// The same Floyd–Warshall computation issued through the runtime
// engine's deferred-trace API: singleton min-plus extracts via
// Engine::reduce(Semiring), candidate rows via compute, relaxes via
// update. The trace auto-flushes several times mid-sweep (the length
// cap), so this also covers reduction results crossing flush boundaries.
TEST(SemiringZooTest, RuntimeEngineFloydWarshallMatchesReference) {
  using namespace alf::runtime;
  EngineOptions EO;
  EO.Verify = verify::VerifyLevel::Full;
  Engine E(EO);
  Region R = Region::fromExtents({N});

  std::vector<Array> Row;
  for (int64_t I = 0; I < N; ++I) {
    Row.push_back(E.input(
        formatString("d%lld", static_cast<long long>(I)), R));
    std::vector<double> Init(static_cast<size_t>(N));
    for (int64_t J = 0; J < N; ++J)
      Init[static_cast<size_t>(J)] = fwInput(I, J);
    Row.back().setAll(Init);
  }

  for (int64_t K = 0; K < N; ++K) {
    Region Pivot({K + 1}, {K + 1});
    for (int64_t I = 0; I < N; ++I) {
      Scalar S = E.reduce(semiring::minPlus(), Pivot, Ex(Row[I]));
      Ex Cand = Ex(S) + Ex(Row[K]);
      E.update(Row[I], Offset({0}), R, emin(Ex(Row[I]), Cand));
    }
  }
  E.flush();

  std::vector<double> Ref = fwReference();
  for (int64_t I = 0; I < N; ++I) {
    std::vector<double> Got = Row[I].values();
    ASSERT_EQ(Got.size(), static_cast<size_t>(N));
    for (int64_t J = 0; J < N; ++J)
      EXPECT_EQ(Got[static_cast<size_t>(J)], Ref[I * N + J])
          << "d" << I << "[" << (J + 1) << "]";
  }
}

//===- tests/InterpreterTest.cpp - Interpreter and equivalence tests --------===//

#include "exec/Interpreter.h"

#include "ir/Generator.h"
#include "ir/Normalize.h"
#include "ir/Verifier.h"
#include "scalarize/Scalarize.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

using namespace alf;
using namespace alf::analysis;
using namespace alf::exec;
using namespace alf::ir;
using namespace alf::xform;

namespace {

TEST(InterpreterTest, ComputesElementwiseValues) {
  Program P("simple");
  const Region *R = P.regionFromExtents({4});
  ArrayOpts InOpts; // live-in and live-out
  ArraySymbol *A = P.makeArray("A", 1, InOpts);
  ArraySymbol *B = P.makeArray("B", 1);
  P.assign(R, B, add(mul(aref(A), cst(2.0)), cst(1.0)));
  ASDG G = ASDG::build(P);
  auto LP = scalarize::scalarizeWithStrategy(G, Strategy::Baseline);
  RunResult Res = run(LP, 42);
  ASSERT_TRUE(Res.LiveOut.count("A"));
  ASSERT_TRUE(Res.LiveOut.count("B"));
  const auto &AData = Res.LiveOut.at("A");
  const auto &BData = Res.LiveOut.at("B");
  ASSERT_EQ(AData.size(), 4u);
  for (size_t I = 0; I < 4; ++I)
    EXPECT_DOUBLE_EQ(BData[I], 2.0 * AData[I] + 1.0);
}

TEST(InterpreterTest, SeedDeterminism) {
  auto P = tp::makeUserTempPair();
  ASDG G = ASDG::build(*P);
  auto LP = scalarize::scalarizeWithStrategy(G, Strategy::Baseline);
  RunResult R1 = run(LP, 7);
  RunResult R2 = run(LP, 7);
  EXPECT_TRUE(resultsMatch(R1, R2));
  RunResult R3 = run(LP, 8);
  EXPECT_FALSE(resultsMatch(R1, R3));
}

TEST(InterpreterTest, OffsetReadsUseHaloValues) {
  // B := A@(-1): element B[i] must read A[i-1], including the halo cell
  // A[0] that lies outside the region.
  Program P("halo");
  const Region *R = P.regionFromExtents({4});
  ArraySymbol *A = P.makeArray("A", 1);
  ArraySymbol *B = P.makeArray("B", 1);
  P.assign(R, B, aref(A, {-1}));
  ASDG G = ASDG::build(P);
  auto LP = scalarize::scalarizeWithStrategy(G, Strategy::Baseline);
  RunResult Res = run(LP, 3);
  const auto &AData = Res.LiveOut.at("A"); // bounds [0..3]: 4 elements
  const auto &BData = Res.LiveOut.at("B"); // bounds [1..4]: 4 elements
  ASSERT_EQ(AData.size(), 4u);
  ASSERT_EQ(BData.size(), 4u);
  for (size_t I = 0; I < 4; ++I)
    EXPECT_DOUBLE_EQ(BData[I], AData[I]); // A[i-1] with A starting at 0
}

TEST(InterpreterTest, ContractionPreservesResults) {
  auto P = tp::makeUserTempPair();
  ASDG G = ASDG::build(*P);
  auto Base = scalarize::scalarizeWithStrategy(G, Strategy::Baseline);
  auto Opt = scalarize::scalarizeWithStrategy(G, Strategy::C2);
  std::string Why;
  EXPECT_TRUE(resultsMatch(run(Base, 11), run(Opt, 11), 0.0, &Why)) << Why;
}

TEST(InterpreterTest, NormalizedSelfUpdatePreservesResults) {
  // A := A@(-1,0) + A@(-1,0): F90 semantics require the old values of A.
  // The reversed fused loop with the contracted temporary must agree with
  // the two-pass baseline.
  Program P("self");
  const Region *R = P.regionFromExtents({6, 6});
  ArraySymbol *A = P.makeArray("A", 2);
  P.assign(R, A, add(aref(A, {-1, 0}), aref(A, {-1, 0})));
  normalizeProgram(P);
  ASDG G = ASDG::build(P);
  auto Base = scalarize::scalarizeWithStrategy(G, Strategy::Baseline);
  auto Opt = scalarize::scalarizeWithStrategy(G, Strategy::C2);
  std::string Why;
  EXPECT_TRUE(resultsMatch(run(Base, 5), run(Opt, 5), 0.0, &Why)) << Why;
}

TEST(InterpreterTest, TomcatvAllStrategiesAgree) {
  auto P = tp::makeTomcatvFragment(32);
  normalizeProgram(*P);
  ASDG G = ASDG::build(*P);
  auto Base = scalarize::scalarizeWithStrategy(G, Strategy::Baseline);
  RunResult BaseRes = run(Base, 99);
  for (Strategy S : allStrategiesForTest()) {
    auto LP = scalarize::scalarizeWithStrategy(G, S);
    std::string Why;
    EXPECT_TRUE(resultsMatch(BaseRes, run(LP, 99), 0.0, &Why))
        << getStrategyName(S) << ": " << Why;
  }
}

TEST(InterpreterTest, OpaqueStatementsDeterministic) {
  GeneratorConfig Cfg;
  Cfg.Seed = 17;
  Cfg.AddOpaque = true;
  auto P = generateRandomProgram(Cfg);
  normalizeProgram(*P);
  ASDG G = ASDG::build(*P);
  auto Base = scalarize::scalarizeWithStrategy(G, Strategy::Baseline);
  auto Opt = scalarize::scalarizeWithStrategy(G, Strategy::C2F3);
  std::string Why;
  EXPECT_TRUE(resultsMatch(run(Base, 23), run(Opt, 23), 0.0, &Why)) << Why;
}

/// The central property: every strategy preserves the baseline's
/// semantics on randomly generated programs. Sweeps seeds and generator
/// shapes.
struct PropertyCase {
  uint64_t Seed;
  unsigned NumStmts;
  unsigned MaxOffset;
  bool SelfRef;
  bool TwoRegions;
  bool Opaque;
};

class StrategyEquivalence : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(StrategyEquivalence, AllStrategiesPreserveSemantics) {
  const PropertyCase &C = GetParam();
  GeneratorConfig Cfg;
  Cfg.Seed = C.Seed;
  Cfg.NumStmts = C.NumStmts;
  Cfg.MaxOffset = C.MaxOffset;
  Cfg.AllowSelfRef = C.SelfRef;
  Cfg.UseTwoRegions = C.TwoRegions;
  Cfg.AddOpaque = C.Opaque;
  Cfg.Extent = 6;

  auto P = generateRandomProgram(Cfg);
  normalizeProgram(*P);
  ASSERT_TRUE(isWellFormed(*P));

  ASDG G = ASDG::build(*P);
  auto Base = scalarize::scalarizeWithStrategy(G, Strategy::Baseline);
  RunResult BaseRes = run(Base, C.Seed ^ 0xabcdef);

  for (Strategy S : allStrategiesForTest()) {
    StrategyResult SR = applyStrategy(G, S);
    EXPECT_TRUE(isValidPartition(SR.Partition)) << getStrategyName(S);
    auto LP = scalarize::scalarize(G, SR);
    std::string Why;
    EXPECT_TRUE(resultsMatch(BaseRes, run(LP, C.Seed ^ 0xabcdef), 0.0, &Why))
        << "strategy " << getStrategyName(S) << " diverged on seed "
        << C.Seed << ": " << Why << "\nprogram:\n"
        << P->str();
  }
}

std::vector<PropertyCase> makeCases() {
  std::vector<PropertyCase> Cases;
  for (uint64_t Seed = 1; Seed <= 30; ++Seed)
    Cases.push_back(PropertyCase{Seed, 4 + static_cast<unsigned>(Seed % 9),
                                 1 + static_cast<unsigned>(Seed % 2),
                                 Seed % 2 == 0, Seed % 3 == 0,
                                 Seed % 5 == 0});
  return Cases;
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, StrategyEquivalence,
                         ::testing::ValuesIn(makeCases()));

} // namespace

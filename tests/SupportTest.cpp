//===- tests/SupportTest.cpp - Support library unit tests --------------------===//

#include "support/Casting.h"
#include "support/Random.h"
#include "support/StringUtil.h"
#include "support/TextTable.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace alf;

namespace {

TEST(StringUtilTest, FormatString) {
  EXPECT_EQ(formatString("x=%d y=%s", 7, "ok"), "x=7 y=ok");
  EXPECT_EQ(formatString("%05.1f", 2.25), "002.2");
  EXPECT_EQ(formatString("empty"), "empty");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"a"}, ","), "a");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringUtilTest, Numbers) {
  EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(formatPercent(12.34), "+12.3%");
  EXPECT_EQ(formatPercent(-4.0), "-4.0%");
}

TEST(TextTableTest, AlignsColumns) {
  TextTable T;
  T.setHeader({"name", "value"});
  T.addRow({"a", "1"});
  T.addRow({"long-name", "12345"});
  std::ostringstream OS;
  T.print(OS);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("name       value"), std::string::npos);
  EXPECT_NE(Out.find("a              1"), std::string::npos);
  EXPECT_NE(Out.find("long-name  12345"), std::string::npos);
  EXPECT_EQ(T.numRows(), 2u);
}

TEST(TextTableTest, NoHeader) {
  TextTable T;
  T.addRow({"x", "y"});
  std::ostringstream OS;
  T.print(OS);
  EXPECT_EQ(OS.str(), "x  y\n");
}

TEST(RandomTest, Deterministic) {
  SplitMix64 A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RandomTest, KnownStream) {
  // Pin the SplitMix64 stream: the C harness emitted by the CEmitter
  // replicates this generator and must stay bit-identical.
  SplitMix64 R(0);
  EXPECT_EQ(R.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(R.next(), 0x6e789e6aa1b965f4ULL);
}

TEST(RandomTest, DoubleRanges) {
  SplitMix64 R(7);
  for (int I = 0; I < 1000; ++I) {
    double V = R.nextDouble();
    EXPECT_GE(V, 0.0);
    EXPECT_LT(V, 1.0);
  }
  for (int I = 0; I < 1000; ++I) {
    double V = R.nextDouble(-1.0, 1.0);
    EXPECT_GE(V, -1.0);
    EXPECT_LT(V, 1.0);
  }
}

TEST(RandomTest, BoundedValues) {
  SplitMix64 R(9);
  for (int I = 0; I < 100; ++I)
    EXPECT_LT(R.nextBounded(7), 7u);
}

// A small hierarchy to exercise the casting templates.
struct Base {
  enum class Kind { A, B } K;
  explicit Base(Kind K) : K(K) {}
};
struct DerivedA : Base {
  DerivedA() : Base(Kind::A) {}
  static bool classof(const Base *B) { return B->K == Kind::A; }
};
struct DerivedB : Base {
  DerivedB() : Base(Kind::B) {}
  static bool classof(const Base *B) { return B->K == Kind::B; }
};

TEST(CastingTest, IsaCastDynCast) {
  DerivedA A;
  Base *B = &A;
  EXPECT_TRUE(isa<DerivedA>(B));
  EXPECT_FALSE(isa<DerivedB>(B));
  EXPECT_EQ(cast<DerivedA>(B), &A);
  EXPECT_EQ(dyn_cast<DerivedA>(B), &A);
  EXPECT_EQ(dyn_cast<DerivedB>(B), nullptr);
  const Base *CB = &A;
  EXPECT_EQ(cast<DerivedA>(CB), &A);
  EXPECT_EQ(dyn_cast_if_present<DerivedA>(static_cast<Base *>(nullptr)),
            nullptr);
}

} // namespace

//===- tests/LoopStructureCompletenessTest.cpp - Figure 4 completeness -------===//
//
// FIND-LOOP-STRUCTURE is a greedy algorithm, but Definition 5's
// condition (iv) asks whether *any* legal loop structure vector exists.
// This property sweep compares the algorithm against brute force over
// every signed permutation: whenever an exhaustive search finds a legal
// vector, the greedy algorithm must find one too (and everything it
// returns must be legal).
//
//===----------------------------------------------------------------------===//

#include "xform/LoopStructure.h"

#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace alf;
using namespace alf::ir;
using namespace alf::xform;

namespace {

/// True if \p P preserves every dependence in \p UDVs.
bool isLegalFor(const LoopStructureVector &P,
                const std::vector<Offset> &UDVs) {
  for (const Offset &U : UDVs)
    if (!isLexicographicallyNonnegative(constrain(U, P)))
      return false;
  return true;
}

/// Exhaustive search over all signed permutations of rank \p Rank.
bool existsLegalVector(const std::vector<Offset> &UDVs, unsigned Rank) {
  std::vector<int> Dims(Rank);
  for (unsigned I = 0; I < Rank; ++I)
    Dims[I] = static_cast<int>(I + 1);
  std::sort(Dims.begin(), Dims.end());
  do {
    for (unsigned SignMask = 0; SignMask < (1u << Rank); ++SignMask) {
      std::vector<int> Elems(Rank);
      for (unsigned I = 0; I < Rank; ++I)
        Elems[I] = (SignMask >> I) & 1 ? -Dims[I] : Dims[I];
      if (isLegalFor(LoopStructureVector(Elems), UDVs))
        return true;
    }
  } while (std::next_permutation(Dims.begin(), Dims.end()));
  return false;
}

class Completeness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Completeness, GreedyAgreesWithExhaustiveSearch) {
  SplitMix64 Rng(GetParam());
  for (unsigned Trial = 0; Trial < 200; ++Trial) {
    unsigned Rank = 1 + static_cast<unsigned>(Rng.nextBounded(3));
    unsigned NumDeps = static_cast<unsigned>(Rng.nextBounded(6));
    std::vector<Offset> UDVs;
    for (unsigned D = 0; D < NumDeps; ++D) {
      Offset U = Offset::zero(Rank);
      for (unsigned K = 0; K < Rank; ++K)
        U[K] = static_cast<int32_t>(Rng.nextBounded(5)) - 2;
      UDVs.push_back(std::move(U));
    }

    auto Found = findLoopStructure(UDVs, Rank);
    bool Exists = existsLegalVector(UDVs, Rank);
    if (Found.has_value()) {
      EXPECT_TRUE(isLegalFor(*Found, UDVs))
          << "greedy returned an illegal vector " << Found->str();
      EXPECT_TRUE(Exists);
    } else {
      EXPECT_FALSE(Exists)
          << "greedy missed a legal vector for rank " << Rank;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Completeness,
                         ::testing::Range<uint64_t>(1, 11));

} // namespace

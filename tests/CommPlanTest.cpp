//===- tests/CommPlanTest.cpp - Communication plans on the benchmarks --------===//
//
// Locks the communication structure the compiler derives for each
// benchmark: how many halo exchanges the favor-fusion policy inserts
// and how many the redundancy elimination saves. Changes to comm
// insertion show up here as explicit diffs.
//
//===----------------------------------------------------------------------===//

#include "comm/CommInsertion.h"

#include "analysis/ASDG.h"
#include "benchprogs/Benchmarks.h"
#include "exec/PerfModel.h"
#include "ir/Normalize.h"
#include "scalarize/Scalarize.h"

#include <gtest/gtest.h>

using namespace alf;
using namespace alf::analysis;
using namespace alf::benchprogs;
using namespace alf::comm;
using namespace alf::ir;
using namespace alf::xform;

namespace {

CommPlan planFor(const BenchmarkInfo &B, Strategy S) {
  auto P = B.Build(B.Rank == 1 ? 64 : 8);
  normalizeProgram(*P);
  ASDG G = ASDG::build(*P);
  auto LP = scalarize::scalarizeWithStrategy(G, S);
  return insertLoopLevelComm(LP);
}

TEST(CommPlanTest, KernelsWithoutStencilsNeedNoExchanges) {
  // EP and Frac read everything aligned: no halo traffic at all ("small
  // codes that do not benefit from communication optimization").
  for (unsigned Idx : {0u, 1u}) {
    const BenchmarkInfo &B = allBenchmarks()[Idx];
    CommPlan Plan = planFor(B, Strategy::C2);
    EXPECT_EQ(Plan.Exchanges, 0u) << B.Name;
  }
}

TEST(CommPlanTest, TomcatvExchangesItsCoefficientHalos) {
  // D is read in all four directions, AA in two, DD in two: eight
  // exchanges, all before the single fused nest.
  CommPlan Plan = planFor(allBenchmarks()[3], Strategy::C2);
  EXPECT_EQ(Plan.Exchanges, 8u);
  EXPECT_EQ(Plan.RedundantElided, 0u);
}

TEST(CommPlanTest, FusionReducesExchangeCount) {
  // Under baseline, consumers sit in separate nests and some halos are
  // needed repeatedly (then elided); under c2 the fused nests need each
  // halo exactly once. The paper: "message vectorization never conflicts
  // with fusion, so it is always performed."
  const BenchmarkInfo &B = allBenchmarks()[4]; // Simple
  CommPlan Base = planFor(B, Strategy::Baseline);
  CommPlan C2 = planFor(B, Strategy::C2);
  EXPECT_LE(C2.Exchanges, Base.Exchanges + Base.RedundantElided);
  EXPECT_GT(C2.Exchanges, 0u);
}

TEST(CommPlanTest, MessageBytesScaleWithBoundary) {
  // A width-2 halo along dimension 1 of an NxN array moves 2*N elements.
  Program P("bytes");
  const Region *R = P.regionFromExtents({16, 16});
  ArraySymbol *A = P.makeArray("A", 2);
  ArraySymbol *B = P.makeArray("B", 2);
  P.assign(R, B, aref(A, {-2, 0}));
  ASDG G = ASDG::build(P);
  auto LP = scalarize::scalarizeWithStrategy(G, Strategy::Baseline);
  insertLoopLevelComm(LP);
  exec::PerfStats Stats = exec::simulate(LP, machine::crayT3E(),
                                         machine::ProcGrid::make(4, 2));
  EXPECT_EQ(Stats.Messages, 1u);
  // Footprint is 18x16 (two halo rows); the slab is 2 of its 18 rows.
  EXPECT_EQ(Stats.MsgBytes, 2u * 16u * 8u);
}

} // namespace

//===- tests/CEmitterTest.cpp - C backend end-to-end tests --------------------===//
//
// Validates the C emitter end to end: the emitted translation unit is
// compiled with the system C compiler, executed, and its checksums are
// compared against the ALF interpreter on identical seeded inputs.
//
//===----------------------------------------------------------------------===//

#include "scalarize/CEmitter.h"

#include "analysis/ASDG.h"
#include "benchprogs/Benchmarks.h"
#include "exec/Interpreter.h"
#include "ir/Generator.h"
#include "ir/Normalize.h"
#include "scalarize/Scalarize.h"
#include "support/StringUtil.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>

using namespace alf;
using namespace alf::analysis;
using namespace alf::exec;
using namespace alf::ir;
using namespace alf::lir;
using namespace alf::xform;

namespace {

bool haveCC() {
  static int Have = -1;
  if (Have < 0)
    Have = std::system("cc --version > /dev/null 2>&1") == 0 ? 1 : 0;
  return Have == 1;
}

/// Compiles and runs the emitted harness; returns the printed
/// name -> checksum map.
std::map<std::string, double> runEmitted(const LoopProgram &LP,
                                         uint64_t Seed) {
  std::string Dir = ::testing::TempDir();
  static int Counter = 0;
  std::string Base = Dir + "/alf_emit_" + std::to_string(getpid()) + "_" +
                     std::to_string(Counter++);
  std::string SrcPath = Base + ".c";
  std::string ExePath = Base + ".exe";

  {
    std::ofstream Out(SrcPath);
    Out << scalarize::emitCWithHarness(LP, "kernel", Seed);
  }
  std::string Compile = "cc -std=c99 -O1 -ffp-contract=off -o " + ExePath +
                        " " + SrcPath + " -lm 2>&1";
  EXPECT_EQ(std::system(Compile.c_str()), 0) << "compilation failed";

  std::map<std::string, double> Result;
  FILE *Pipe = popen(ExePath.c_str(), "r");
  EXPECT_NE(Pipe, nullptr);
  char Name[256];
  double Value;
  while (Pipe && std::fscanf(Pipe, "%255s %lf", Name, &Value) == 2)
    Result[Name] = Value;
  if (Pipe)
    pclose(Pipe);
  std::remove(SrcPath.c_str());
  std::remove(ExePath.c_str());
  return Result;
}

/// Interpreter-side checksums in the same format.
std::map<std::string, double> interpreterChecksums(const LoopProgram &LP,
                                                   uint64_t Seed) {
  RunResult R = run(LP, Seed);
  std::map<std::string, double> Result;
  for (const auto &[Name, Data] : R.LiveOut) {
    double Sum = 0.0;
    for (double V : Data)
      Sum += V;
    Result[Name] = Sum;
  }
  for (const auto &[Name, V] : R.ScalarsOut)
    Result[Name] = V;
  return Result;
}

void expectMatch(const std::map<std::string, double> &FromC,
                 const std::map<std::string, double> &FromInterp) {
  ASSERT_EQ(FromC.size(), FromInterp.size());
  for (const auto &[Name, Expected] : FromInterp) {
    auto It = FromC.find(Name);
    ASSERT_NE(It, FromC.end()) << "missing checksum for " << Name;
    double Tol = 1e-9 * (std::fabs(Expected) + 1.0);
    EXPECT_NEAR(It->second, Expected, Tol) << Name;
  }
}

void checkProgram(Program &P, Strategy S, uint64_t Seed) {
  if (!haveCC())
    GTEST_SKIP() << "no system C compiler";
  normalizeProgram(P);
  ASDG G = ASDG::build(P);
  auto LP = scalarize::scalarizeWithStrategy(G, S);
  expectMatch(runEmitted(LP, Seed), interpreterChecksums(LP, Seed));
}

TEST(CEmitterTest, EmitsCompilableSource) {
  Program P("t");
  const Region *R = P.regionFromExtents({4, 4});
  ArraySymbol *A = P.makeArray("A", 2);
  ArraySymbol *B = P.makeArray("B", 2);
  P.assign(R, B, add(aref(A, {-1, 0}), cst(1.0)));
  ASDG G = ASDG::build(P);
  auto LP = scalarize::scalarizeWithStrategy(G, Strategy::Baseline);
  std::string Src = scalarize::emitC(LP, "kernel");
  EXPECT_NE(Src.find("void kernel(double *A_A, double *A_B)"),
            std::string::npos);
  EXPECT_NE(Src.find("A_B["), std::string::npos);
  EXPECT_NE(Src.find("#include <math.h>"), std::string::npos);
}

TEST(CEmitterTest, SimpleAssignMatchesInterpreter) {
  Program P("simple");
  const Region *R = P.regionFromExtents({8, 8});
  ArraySymbol *A = P.makeArray("A", 2);
  ArraySymbol *B = P.makeArray("B", 2);
  ScalarSymbol *Alpha = P.makeScalar("alpha");
  P.assign(R, B, add(mul(aref(A), sref(Alpha)), aref(A, {-1, 1})));
  checkProgram(P, Strategy::Baseline, 7);
}

TEST(CEmitterTest, ContractionMatchesInterpreter) {
  Program P("contract");
  const Region *R = P.regionFromExtents({8, 8});
  ArraySymbol *A = P.makeArray("A", 2);
  ArraySymbol *T = P.makeUserTemp("T", 2);
  ArraySymbol *C = P.makeArray("C", 2);
  P.assign(R, T, esqrt(add(aref(A), cst(2.0))));
  P.assign(R, C, div(aref(T), aref(A)));
  checkProgram(P, Strategy::C2, 11);
}

TEST(CEmitterTest, SelfUpdateWithReversedLoop) {
  Program P("reversed");
  const Region *R = P.regionFromExtents({8, 8});
  ArraySymbol *A = P.makeArray("A", 2);
  P.assign(R, A, add(aref(A, {-1, 0}), aref(A, {-1, 0})));
  checkProgram(P, Strategy::C2, 13);
}

TEST(CEmitterTest, ReductionsMatchInterpreter) {
  Program P("reduce");
  const Region *R = P.regionFromExtents({16});
  ArraySymbol *A = P.makeArray("A", 1);
  ArraySymbol *T = P.makeUserTemp("T", 1);
  ScalarSymbol *Sum = P.makeScalar("sum");
  ScalarSymbol *Hi = P.makeScalar("hi");
  P.assign(R, T, mul(aref(A), aref(A)));
  P.reduce(R, Sum, ReduceStmt::ReduceOpKind::Sum, aref(T));
  P.reduce(R, Hi, ReduceStmt::ReduceOpKind::Max, aref(A));
  checkProgram(P, Strategy::C2, 17);
}

TEST(CEmitterTest, OpaqueSemanticsMatchInterpreter) {
  Program P("opaque");
  const Region *R = P.regionFromExtents({6, 6});
  ArraySymbol *A = P.makeArray("A", 2);
  ArraySymbol *B = P.makeArray("B", 2);
  ScalarSymbol *S = P.makeScalar("s");
  P.assign(R, B, mul(aref(A), cst(0.5)));
  P.opaque("mix", R, {B}, {A}, {}, {S}, 1.0, false);
  checkProgram(P, Strategy::Baseline, 19);
}

TEST(CEmitterTest, TomcatvBenchmarkMatches) {
  auto P = benchprogs::buildTomcatv(12);
  checkProgram(*P, Strategy::C2F3, 23);
}

TEST(CEmitterTest, EPBenchmarkMatches) {
  auto P = benchprogs::buildEP(64);
  checkProgram(*P, Strategy::C2, 29);
}

TEST(CEmitterTest, PartialContractionModularBuffers) {
  if (!haveCC())
    GTEST_SKIP() << "no system C compiler";
  Program P("partial");
  const Region *R = P.regionFromExtents({10, 10});
  ArraySymbol *A = P.makeArray("A", 2);
  ArraySymbol *T = P.makeUserTemp("T", 2);
  ArraySymbol *B = P.makeArray("B", 2);
  P.assign(R, T, add(aref(A), cst(1.0)));
  P.assign(R, B, add(aref(T, {-1, 0}), aref(T)));
  ASDG G = ASDG::build(P);
  auto LP = scalarize::scalarizeWithPartialContraction(
      G, Strategy::C2, SequentialDims::dims({0}));
  ASSERT_EQ(LP.partialPlans().size(), 1u);
  std::string Src = scalarize::emitCWithHarness(LP, "kernel", 31);
  EXPECT_NE(Src.find("% 2"), std::string::npos)
      << "expected modular rolling-buffer indexing";
  expectMatch(runEmitted(LP, 31), interpreterChecksums(LP, 31));
}

class CEmitterRandom : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CEmitterRandom, RandomProgramsMatchInterpreter) {
  GeneratorConfig Cfg;
  Cfg.Seed = GetParam();
  Cfg.NumStmts = 6 + static_cast<unsigned>(GetParam() % 5);
  Cfg.Extent = 6;
  auto P = generateRandomProgram(Cfg);
  checkProgram(*P, GetParam() % 2 ? Strategy::C2F3 : Strategy::Baseline,
               GetParam() * 31);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CEmitterRandom,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

} // namespace

//===- tests/FrontendTest.cpp - Lexer and parser tests -----------------------===//

#include "frontend/Lexer.h"
#include "frontend/Parser.h"

#include "analysis/ASDG.h"
#include "ir/Normalize.h"
#include "ir/Verifier.h"
#include "xform/Strategy.h"

#include <gtest/gtest.h>

using namespace alf;
using namespace alf::frontend;
using namespace alf::ir;

namespace {

TEST(LexerTest, BasicTokens) {
  auto Tokens = tokenize("region R : [1..8, 1..8];");
  ASSERT_GE(Tokens.size(), 12u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::KwRegion);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Ident);
  EXPECT_EQ(Tokens[1].Text, "R");
  EXPECT_EQ(Tokens[2].Kind, TokenKind::Colon);
  EXPECT_EQ(Tokens[3].Kind, TokenKind::LBracket);
  EXPECT_EQ(Tokens[4].Kind, TokenKind::Number);
  EXPECT_EQ(Tokens[5].Kind, TokenKind::DotDot);
  EXPECT_EQ(Tokens.back().Kind, TokenKind::Eof);
}

TEST(LexerTest, NumbersAndRanges) {
  auto Tokens = tokenize("1.5 2..3 0.25");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Number);
  EXPECT_DOUBLE_EQ(Tokens[0].NumValue, 1.5);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Number);
  EXPECT_DOUBLE_EQ(Tokens[1].NumValue, 2.0);
  EXPECT_EQ(Tokens[2].Kind, TokenKind::DotDot);
  EXPECT_EQ(Tokens[3].Kind, TokenKind::Number);
  EXPECT_EQ(Tokens[4].Kind, TokenKind::Number);
  EXPECT_DOUBLE_EQ(Tokens[4].NumValue, 0.25);
}

TEST(LexerTest, OperatorsAndComments) {
  auto Tokens = tokenize(":= @ << -- a comment\n+ - * /");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Assign);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::At);
  EXPECT_EQ(Tokens[2].Kind, TokenKind::Reduce);
  EXPECT_EQ(Tokens[3].Kind, TokenKind::Plus);
  EXPECT_EQ(Tokens[4].Kind, TokenKind::Minus);
  EXPECT_EQ(Tokens[5].Kind, TokenKind::Star);
  EXPECT_EQ(Tokens[6].Kind, TokenKind::Slash);
}

TEST(LexerTest, PositionsTracked) {
  auto Tokens = tokenize("a\n  b");
  EXPECT_EQ(Tokens[0].Line, 1u);
  EXPECT_EQ(Tokens[0].Col, 1u);
  EXPECT_EQ(Tokens[1].Line, 2u);
  EXPECT_EQ(Tokens[1].Col, 3u);
}

const char *StencilSource = R"(
-- Jacobi-style stencil with a user temporary.
region R : [1..16, 1..16];
array A, B : R;
array T : R temp;
scalar total;

[R] T := (A@(-1,0) + A@(1,0) + A@(0,-1) + A@(0,1)) * 0.25;
[R] B := T + A * 0.5;
[R] total := + << T;
)";

TEST(ParserTest, ParsesStencilProgram) {
  ParseResult Result = parseProgram(StencilSource, "stencil");
  ASSERT_TRUE(Result.succeeded())
      << (Result.Errors.empty() ? "" : Result.Errors.front());
  Program &P = *Result.Prog;
  EXPECT_TRUE(isWellFormed(P));
  ASSERT_EQ(P.numStmts(), 3u);
  EXPECT_EQ(P.getStmt(0)->str(),
            "[1..16,1..16] T := ((((A@(-1,0) + A@(1,0)) + A@(0,-1)) + "
            "A@(0,1)) * 0.25);");
  EXPECT_EQ(P.getStmt(2)->str(), "[1..16,1..16] total := +<< T;");

  const auto *T = dyn_cast<ArraySymbol>(P.findSymbol("T"));
  ASSERT_NE(T, nullptr);
  EXPECT_FALSE(T->isLiveOut());
  const auto *A = dyn_cast<ArraySymbol>(P.findSymbol("A"));
  EXPECT_TRUE(A->isLiveOut());
}

TEST(ParserTest, ParsedProgramOptimizes) {
  ParseResult Result = parseProgram(StencilSource);
  ASSERT_TRUE(Result.succeeded());
  normalizeProgram(*Result.Prog);
  analysis::ASDG G = analysis::ASDG::build(*Result.Prog);
  xform::StrategyResult SR = xform::applyStrategy(G, xform::Strategy::C2);
  ASSERT_EQ(SR.Contracted.size(), 1u);
  EXPECT_EQ(SR.Contracted[0]->getName(), "T");
}

TEST(ParserTest, SelfUpdateAndBuiltins) {
  ParseResult Result = parseProgram(R"(
region R : [1..8];
array A : R;
[R] A := sqrt(abs(A@(-1))) + min(A@(1), 2.0);
)");
  ASSERT_TRUE(Result.succeeded())
      << (Result.Errors.empty() ? "" : Result.Errors.front());
  // Reads and writes A: needs normalization.
  EXPECT_FALSE(isWellFormed(*Result.Prog));
  EXPECT_EQ(normalizeProgram(*Result.Prog), 1u);
  EXPECT_TRUE(isWellFormed(*Result.Prog));
}

TEST(ParserTest, LHSOffset) {
  ParseResult Result = parseProgram(R"(
region R : [1..8];
array A, B : R;
[R] A@(1) := B * 2;
)");
  ASSERT_TRUE(Result.succeeded());
  EXPECT_EQ(Result.Prog->getStmt(0)->str(), "[1..8] A@(1) := (B * 2);");
}

TEST(ParserTest, MinMaxReductions) {
  ParseResult Result = parseProgram(R"(
region R : [1..8];
array A : R;
scalar lo, hi;
[R] lo := min << A;
[R] hi := max << A;
)");
  ASSERT_TRUE(Result.succeeded());
  EXPECT_EQ(Result.Prog->getStmt(0)->str(), "[1..8] lo := min<< A;");
  EXPECT_EQ(Result.Prog->getStmt(1)->str(), "[1..8] hi := max<< A;");
}

TEST(ParserTest, NegativeOffsetsAndPrecedence) {
  ParseResult Result = parseProgram(R"(
region R : [1..4, 1..4];
array A, B : R;
[R] B := A + A@(-1,-1) * 2 - 1;
)");
  ASSERT_TRUE(Result.succeeded());
  EXPECT_EQ(Result.Prog->getStmt(0)->str(),
            "[1..4,1..4] B := ((A + (A@(-1,-1) * 2)) - 1);");
}

TEST(ParserTest, NamedDirections) {
  ParseResult Result = parseProgram(R"(
region R : [1..8, 1..8];
direction north : (-1, 0);
direction east  : (0, 1);
array A, B : R;
[R] B := A@north + A@east * 0.5;
)");
  ASSERT_TRUE(Result.succeeded())
      << (Result.Errors.empty() ? "" : Result.Errors.front());
  EXPECT_EQ(Result.Prog->getStmt(0)->str(),
            "[1..8,1..8] B := (A@(-1,0) + (A@(0,1) * 0.5));");
}

TEST(ParserTest, DirectionOnAssignmentTarget) {
  ParseResult Result = parseProgram(R"(
region R : [1..8];
direction left : (-1);
array A, B : R;
[R] A@left := B;
)");
  ASSERT_TRUE(Result.succeeded());
  EXPECT_EQ(Result.Prog->getStmt(0)->str(), "[1..8] A@(-1) := B;");
}

TEST(ParserTest, ReportsUnknownDirection) {
  ParseResult Result = parseProgram(R"(
region R : [1..8];
array A, B : R;
[R] B := A@nowhere;
)");
  EXPECT_FALSE(Result.succeeded());
  EXPECT_NE(Result.Errors[0].find("unknown direction nowhere"),
            std::string::npos);
}

TEST(ParserTest, ReportsDirectionRankMismatch) {
  ParseResult Result = parseProgram(R"(
region R : [1..8];
direction north : (-1, 0);
array A, B : R;
[R] B := A@north;
)");
  EXPECT_FALSE(Result.succeeded());
  EXPECT_NE(Result.Errors[0].find("direction north has 2 elements"),
            std::string::npos);
}

TEST(ParserTest, ReportsUnknownSymbol) {
  ParseResult Result = parseProgram(R"(
region R : [1..8];
array A : R;
[R] A := Bogus + 1;
)");
  EXPECT_FALSE(Result.succeeded());
  ASSERT_FALSE(Result.Errors.empty());
  EXPECT_NE(Result.Errors[0].find("unknown symbol Bogus"),
            std::string::npos);
}

TEST(ParserTest, ReportsRankMismatch) {
  ParseResult Result = parseProgram(R"(
region R : [1..8];
array A : R;
[R] A := A@(1,1);
)");
  EXPECT_FALSE(Result.succeeded());
  ASSERT_FALSE(Result.Errors.empty());
  EXPECT_NE(Result.Errors[0].find("offset has 2 elements"),
            std::string::npos);
}

TEST(ParserTest, ReportsScalarAssignWithoutReduce) {
  ParseResult Result = parseProgram(R"(
region R : [1..8];
array A : R;
scalar s;
[R] s := A;
)");
  EXPECT_FALSE(Result.succeeded());
  ASSERT_FALSE(Result.Errors.empty());
  EXPECT_NE(Result.Errors[0].find("use a reduction"), std::string::npos);
}

TEST(ParserTest, ReportsDuplicateDeclarations) {
  ParseResult Result = parseProgram(R"(
region R : [1..8];
region R : [1..9];
)");
  EXPECT_FALSE(Result.succeeded());
  EXPECT_NE(Result.Errors[0].find("already declared"), std::string::npos);
}

TEST(ParserTest, ErrorsCarryLineAndColumnPositions) {
  // The zplc driver prepends the file name to form "file:line:col: error:
  // message" diagnostics, so every parser error must start with a
  // machine-readable "line:col: " position.
  ParseResult Result = parseProgram(R"(
region R : [1..8];
array A : R;
[R] A := A +* 2;
)");
  EXPECT_FALSE(Result.succeeded());
  ASSERT_FALSE(Result.Errors.empty());
  const std::string &E = Result.Errors[0];
  size_t C1 = E.find(':');
  ASSERT_NE(C1, std::string::npos) << E;
  size_t C2 = E.find(": ", C1 + 1);
  ASSERT_NE(C2, std::string::npos) << E;
  EXPECT_EQ(E.substr(0, C1), "4") << E; // the bad token's line
  for (size_t I = C1 + 1; I < C2; ++I)
    EXPECT_TRUE(isdigit(E[I])) << E;
}

TEST(ParserTest, RecoversAndReportsMultipleErrors) {
  ParseResult Result = parseProgram(R"(
region R : [1..8];
array A : Bogus;
array B : R;
[R] B := Missing;
)");
  EXPECT_FALSE(Result.succeeded());
  EXPECT_GE(Result.Errors.size(), 2u);
}

TEST(ParserTest, ErrorsCarryPositions) {
  ParseResult Result = parseProgram("region R : [1..8]\narray A : R;");
  EXPECT_FALSE(Result.succeeded());
  ASSERT_FALSE(Result.Errors.empty());
  // The missing ';' is discovered at line 2.
  EXPECT_EQ(Result.Errors[0].substr(0, 2), "2:");
}

} // namespace

//===- tests/StatementMergeTest.cpp - Statement merge and DCE tests ----------===//

#include "xform/StatementMerge.h"

#include "analysis/ASDG.h"
#include "exec/Interpreter.h"
#include "ir/Generator.h"
#include "ir/Normalize.h"
#include "ir/Program.h"
#include "ir/Verifier.h"
#include "scalarize/Scalarize.h"
#include "xform/Strategy.h"

#include <gtest/gtest.h>

using namespace alf;
using namespace alf::analysis;
using namespace alf::exec;
using namespace alf::ir;
using namespace alf::xform;

namespace {

TEST(StatementMergeTest, SubstitutesAlignedUse) {
  Program P("merge");
  const Region *R = P.regionFromExtents({8});
  ArraySymbol *A = P.makeArray("A", 1);
  ArraySymbol *T = P.makeUserTemp("T", 1);
  ArraySymbol *B = P.makeArray("B", 1);
  P.assign(R, T, add(aref(A), cst(1.0)));
  P.assign(R, B, mul(aref(T), cst(2.0)));
  EXPECT_EQ(mergeStatements(P), 1u);
  EXPECT_EQ(P.getStmt(1)->str(), "[1..8] B := ((A + 1) * 2);");
  // The definition is now dead.
  EXPECT_EQ(eliminateDeadStatements(P), 1u);
  EXPECT_EQ(P.numStmts(), 1u);
  EXPECT_TRUE(isWellFormed(P));
}

TEST(StatementMergeTest, DuplicatesWorkAcrossMultipleUses) {
  // The redundant-computation cost the paper attributes to statement
  // merge: two consumers each get a copy of the definition.
  Program P("dup");
  const Region *R = P.regionFromExtents({8});
  ArraySymbol *A = P.makeArray("A", 1);
  ArraySymbol *T = P.makeUserTemp("T", 1);
  ArraySymbol *B = P.makeArray("B", 1);
  ArraySymbol *C = P.makeArray("C", 1);
  P.assign(R, T, esqrt(aref(A)));
  P.assign(R, B, add(aref(T), cst(1.0)));
  P.assign(R, C, sub(aref(T), cst(1.0)));
  EXPECT_EQ(mergeStatements(P), 2u);
  eliminateDeadStatements(P);
  EXPECT_EQ(P.numStmts(), 2u);
  EXPECT_EQ(P.getStmt(0)->str(), "[1..8] B := (sqrt(A) + 1);");
  EXPECT_EQ(P.getStmt(1)->str(), "[1..8] C := (sqrt(A) - 1);");
}

TEST(StatementMergeTest, OffsetUseBlocksSubstitution) {
  // "it is not always possible": a shifted use observes boundary values
  // that the definition's expression would compute differently.
  Program P("offset");
  const Region *R = P.regionFromExtents({8});
  ArraySymbol *A = P.makeArray("A", 1);
  ArraySymbol *T = P.makeUserTemp("T", 1);
  ArraySymbol *B = P.makeArray("B", 1);
  P.assign(R, T, add(aref(A), cst(1.0)));
  P.assign(R, B, aref(T, {-1}));
  EXPECT_EQ(mergeStatements(P), 0u);
  EXPECT_EQ(eliminateDeadStatements(P), 0u); // still read
}

TEST(StatementMergeTest, OperandClobberBlocksSubstitution) {
  Program P("clobber");
  const Region *R = P.regionFromExtents({8});
  ArraySymbol *A = P.makeArray("A", 1);
  ArraySymbol *T = P.makeUserTemp("T", 1);
  ArraySymbol *B = P.makeArray("B", 1);
  P.assign(R, T, add(aref(A), cst(1.0)));
  P.assign(R, A, cst(0.0));      // clobbers the operand
  P.assign(R, B, aref(T));       // must keep reading T
  EXPECT_EQ(mergeStatements(P), 0u);
}

TEST(StatementMergeTest, RedefinitionEndsLiveRange) {
  Program P("redef");
  const Region *R = P.regionFromExtents({8});
  ArraySymbol *A = P.makeArray("A", 1);
  ArraySymbol *T = P.makeUserTemp("T", 1);
  ArraySymbol *B = P.makeArray("B", 1);
  ArraySymbol *C = P.makeArray("C", 1);
  P.assign(R, T, add(aref(A), cst(1.0)));
  P.assign(R, B, aref(T));        // substituted from the first def
  P.assign(R, T, mul(aref(A), cst(3.0)));
  P.assign(R, C, aref(T));        // substituted from the second def
  EXPECT_EQ(mergeStatements(P), 2u);
  EXPECT_EQ(P.getStmt(1)->str(), "[1..8] B := (A + 1);");
  EXPECT_EQ(P.getStmt(3)->str(), "[1..8] C := (A * 3);");
  EXPECT_EQ(eliminateDeadStatements(P), 2u);
}

TEST(StatementMergeTest, SubstitutesIntoReductions) {
  Program P("red");
  const Region *R = P.regionFromExtents({8});
  ArraySymbol *A = P.makeArray("A", 1);
  ArraySymbol *T = P.makeUserTemp("T", 1);
  ScalarSymbol *S = P.makeScalar("s");
  P.assign(R, T, mul(aref(A), aref(A)));
  P.reduce(R, S, ReduceStmt::ReduceOpKind::Sum, aref(T));
  EXPECT_EQ(mergeStatements(P), 1u);
  EXPECT_EQ(P.getStmt(1)->str(), "[1..8] s := +<< (A * A);");
  EXPECT_EQ(eliminateDeadStatements(P), 1u);
}

TEST(DeadCodeTest, KeepsLiveOutAndOverwrittenCorrectly) {
  Program P("dce");
  const Region *R = P.regionFromExtents({8});
  ArraySymbol *A = P.makeArray("A", 1); // live-out: kept
  ArraySymbol *T = P.makeUserTemp("T", 1);
  P.assign(R, A, cst(1.0));
  P.assign(R, T, cst(2.0)); // dead: overwritten before any read
  P.assign(R, T, cst(3.0));
  P.assign(R, A, aref(T));
  EXPECT_EQ(eliminateDeadStatements(P), 1u);
  EXPECT_EQ(P.numStmts(), 3u);
}

class MergePreservesSemantics : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MergePreservesSemantics, RandomPrograms) {
  GeneratorConfig Cfg;
  Cfg.Seed = GetParam();
  Cfg.NumStmts = 6 + static_cast<unsigned>(GetParam() % 6);
  Cfg.Extent = 6;
  auto P1 = generateRandomProgram(Cfg);
  auto P2 = generateRandomProgram(Cfg);
  normalizeProgram(*P1);
  normalizeProgram(*P2);
  // Dead code is removed from both sides so the surviving footprints
  // (and hence the compared buffers) coincide; merge's own fully
  // substituted definitions replicate their operand reads into the
  // consumers, preserving footprints exactly.
  eliminateDeadStatements(*P1);
  eliminateDeadStatements(*P2);
  mergeStatements(*P2);
  eliminateDeadStatements(*P2);
  // Substitution can recreate read/write overlaps; restore normal form.
  normalizeProgram(*P2);
  ASSERT_TRUE(isWellFormed(*P2));

  ASDG G1 = ASDG::build(*P1);
  ASDG G2 = ASDG::build(*P2);
  auto L1 = scalarize::scalarizeWithStrategy(G1, Strategy::Baseline);
  auto L2 = scalarize::scalarizeWithStrategy(G2, Strategy::Baseline);
  std::string Why;
  EXPECT_TRUE(resultsMatch(run(L1, GetParam()), run(L2, GetParam()), 0.0,
                           &Why))
      << "seed " << GetParam() << ": " << Why << "\n"
      << P2->str();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergePreservesSemantics,
                         ::testing::Range<uint64_t>(1, 25));

} // namespace
